#include "core/simulate.hpp"

#include <algorithm>
#include <memory>
#include <string>
#include <utility>

#include "common/error.hpp"
#include "core/pack.hpp"
#include "obs/session.hpp"

namespace parfft::core {

std::vector<Box3> grid_boxes(const std::array<int, 3>& n,
                             const ProcGrid& grid, int nranks) {
  return pad_boxes(split_world(world_box(n), grid), nranks);
}

std::vector<Box3> brick_layout(const std::array<int, 3>& n, int nranks) {
  return grid_boxes(n, min_surface_grid(nranks, n), nranks);
}

namespace {

/// One simulated execution pass over the stages, advancing `clocks`.
class StageRunner {
 public:
  StageRunner(const SimConfig& cfg, const StagePlan& plan,
              const net::CommCost& cost, SimReport& report,
              std::vector<gpu::PlanCache>& caches,
              std::vector<double>& clocks, obs::RunTrace* run)
      : cfg_(cfg), plan_(plan), cost_(cost), report_(report),
        caches_(caches), clocks_(clocks), run_(run) {}

  void run_transform() {
    if (run_ != nullptr)
      for (int r = 0; r < plan_.nranks; ++r)
        run_->tracer.begin(r, obs::Category::Transform, "fft3d",
                           clocks_[static_cast<std::size_t>(r)]);
    std::size_t reshape_idx = 0;
    for (const Stage& s : plan_.stages) {
      if (s.kind == Stage::Kind::Reshape) {
        run_reshape(s, reshape_idx++);
      } else {
        run_fft(s);
      }
    }
    if (run_ != nullptr)
      for (int r = 0; r < plan_.nranks; ++r)
        run_->tracer.end(r, clocks_[static_cast<std::size_t>(r)]);
    first_transform_ = false;
  }

 private:
  net::TransferMode mode() const {
    return cfg_.gpu_aware ? net::TransferMode::GpuAware
                          : net::TransferMode::Staged;
  }

  /// Per-reshape costs are identical across repeats; compute once.
  struct ReshapeCosts {
    std::vector<double> pack, unpack;  // per rank
    double max_pack = 0, max_unpack = 0;
    net::PhaseTimes phase;
    net::LinkStats stats;  ///< filled only when tracing is on
    // Calibration for obs::ExchangeRecord (filled only when tracing is
    // on): the busiest sender's remote traffic, and the uncontended
    // bandwidth / fixed per-message cost a representative message of this
    // exchange measures against the idle fabric (the B and L of
    // model eqs. (2)-(5)).
    double bytes_total = 0;
    double max_rank_bytes = 0;
    int max_rank_msgs = 0;
    double model_bw = 0;
    double per_msg_cost = 0;
  };

  const ReshapeCosts& reshape_costs(const Stage& s, std::size_t idx) {
    if (reshape_cache_.size() <= idx) reshape_cache_.resize(idx + 1);
    auto& slot = reshape_cache_[idx];
    if (slot) return *slot;
    slot = std::make_unique<ReshapeCosts>();
    ReshapeCosts& rc = *slot;
    const ReshapePlan& rp = s.reshape;
    const int R = plan_.nranks;
    const int batch = plan_.options.batch;
    const bool datatype = backend_is_datatype(plan_.options.backend);
    rc.pack.assign(static_cast<std::size_t>(R), 0.0);
    rc.unpack.assign(static_cast<std::size_t>(R), 0.0);
    if (!datatype) {
      for (int r = 0; r < R; ++r) {
        double t = 0;
        const Box3& from = rp.from()[static_cast<std::size_t>(r)];
        for (const Transfer& tr : rp.sends(r))
          t += gpu::pack_region_cost(
              cfg_.device,
              static_cast<double>(tr.region.count() * batch) * sizeof(cplx),
              pack_contiguous_run(from, tr.region));
        if (!rp.sends(r).empty()) t += cfg_.device.kernel_launch;
        rc.pack[static_cast<std::size_t>(r)] = t;
        rc.max_pack = std::max(rc.max_pack, t);
        double u = 0;
        const Box3& to = rp.to()[static_cast<std::size_t>(r)];
        for (const Transfer& tr : rp.recvs(r))
          u += gpu::pack_region_cost(
              cfg_.device,
              static_cast<double>(tr.region.count() * batch) * sizeof(cplx),
              pack_contiguous_run(to, tr.region));
        if (!rp.recvs(r).empty()) u += cfg_.device.kernel_launch;
        rc.unpack[static_cast<std::size_t>(r)] = u;
        rc.max_unpack = std::max(rc.max_unpack, u);
      }
    }
    std::vector<int> group(static_cast<std::size_t>(R));
    for (int r = 0; r < R; ++r) group[static_cast<std::size_t>(r)] = r;
    rc.phase = cost_.exchange(group, rp.send_matrix(batch),
                              to_alg(plan_.options.backend), mode(),
                              cfg_.flavor, run_ ? &rc.stats : nullptr);
    if (run_ != nullptr) calibrate_exchange(rp, batch, rc);
    return rc;
  }

  /// Measures the busiest sender's traffic and the uncontended (B, L)
  /// pair for this exchange. Read-only over the fabric: single_flow_time
  /// and point_to_point are const, so tracing never perturbs the run.
  void calibrate_exchange(const ReshapePlan& rp, int batch, ReshapeCosts& rc) {
    int busiest = -1, busiest_peer = -1;
    for (int r = 0; r < plan_.nranks; ++r) {
      double sent = 0;
      int msgs = 0, peer = -1;
      for (const Transfer& tr : rp.sends(r)) {
        if (tr.peer == r) continue;  // local copy, not a message
        sent +=
            static_cast<double>(tr.region.count() * batch) * sizeof(cplx);
        ++msgs;
        if (peer < 0) peer = tr.peer;
      }
      rc.bytes_total += sent;
      if (msgs > 0 && sent > rc.max_rank_bytes) {
        rc.max_rank_bytes = sent;
        rc.max_rank_msgs = msgs;
        busiest = r;
        busiest_peer = peer;
      }
    }
    if (busiest < 0) return;  // nothing leaves any rank
    const double rep_bytes = rc.max_rank_bytes / rc.max_rank_msgs;
    const double transport = cost_.flowsim().single_flow_time(
        busiest, busiest_peer, rep_bytes, mode());
    if (transport > 0) rc.model_bw = rep_bytes / transport;
    rc.per_msg_cost = std::max(
        cost_.point_to_point(busiest, busiest_peer, rep_bytes, mode()) -
            transport,
        0.0);
  }

  void run_reshape(const Stage& s, std::size_t idx) {
    const int R = plan_.nranks;
    const ReshapeCosts& rc = reshape_costs(s, idx);
    if (run_ != nullptr)
      for (int r = 0; r < R; ++r)
        run_->tracer.begin(r, obs::Category::Reshape, "reshape",
                           clocks_[static_cast<std::size_t>(r)]);
    for (int r = 0; r < R; ++r) {
      const double p = rc.pack[static_cast<std::size_t>(r)];
      if (run_ != nullptr && p > 0)
        run_->tracer.complete(r, obs::Category::Pack, "pack",
                              clocks_[static_cast<std::size_t>(r)], p);
      clocks_[static_cast<std::size_t>(r)] += p;
    }
    report_.kernels.pack += rc.max_pack;

    // Exchange: globally synchronizing collective, per-rank completion
    // from the congestion-aware model (identical call to threaded mode).
    const double base = *std::max_element(clocks_.begin(), clocks_.end());
    if (run_ != nullptr) record_reshape_obs(s, rc, base);
    for (int r = 0; r < R; ++r) {
      if (run_ != nullptr) {
        const double c = clocks_[static_cast<std::size_t>(r)];
        if (base > c)
          run_->tracer.complete(r, obs::Category::Wait, "exchange sync", c,
                                base - c);
        run_->tracer.complete(
            r, obs::Category::Exchange, backend_name(plan_.options.backend),
            base, rc.phase.per_rank[static_cast<std::size_t>(r)]);
      }
      clocks_[static_cast<std::size_t>(r)] =
          base + rc.phase.per_rank[static_cast<std::size_t>(r)];
    }
    report_.kernels.comm += rc.phase.total;
    report_.comm_calls.push_back(
        {backend_name(plan_.options.backend), rc.phase.total});

    for (int r = 0; r < R; ++r) {
      const double u = rc.unpack[static_cast<std::size_t>(r)];
      if (run_ != nullptr && u > 0)
        run_->tracer.complete(r, obs::Category::Unpack, "unpack",
                              clocks_[static_cast<std::size_t>(r)], u);
      clocks_[static_cast<std::size_t>(r)] += u;
      if (run_ != nullptr)
        run_->tracer.end(r, clocks_[static_cast<std::size_t>(r)]);
    }
    report_.kernels.unpack += rc.max_unpack;
  }

  /// Per-execution metrics: bytes sent, message sizes, fan-out, and the
  /// link-utilization record of this reshape's exchange (gauges keep the
  /// peak over executions; counter tracks get the time-shifted samples).
  void record_reshape_obs(const Stage& s, const ReshapeCosts& rc,
                          double base) {
    const ReshapePlan& rp = s.reshape;
    const int batch = plan_.options.batch;
    for (int r = 0; r < plan_.nranks; ++r) {
      double sent = 0;
      for (const Transfer& tr : rp.sends(r)) {
        const double b =
            static_cast<double>(tr.region.count() * batch) * sizeof(cplx);
        sent += b;
        run_->metrics
            .histogram("reshape/message_bytes",
                       obs::geometric_edges(1024.0, 1e9, 4.0))
            .observe(b);
      }
      run_->metrics.counter("rank/" + std::to_string(r) + "/bytes_sent")
          .add(sent);
      run_->metrics
          .histogram("reshape/fanout", obs::geometric_edges(1.0, 1024.0, 2.0))
          .observe(static_cast<double>(rp.sends(r).size()));
    }
    for (const net::LinkStats::Link& l : rc.stats.links) {
      if (l.capacity <= 0) continue;
      run_->metrics.gauge("link/" + l.name + "/peak_util")
          .set_max(l.peak_rate / l.capacity);
      run_->metrics.gauge("link/" + l.name + "/mean_util")
          .set_max(l.mean_rate(rc.stats.duration) / l.capacity);
      run_->metrics.gauge("link/" + l.name + "/saturated_frac")
          .set_max(l.saturated_fraction(rc.stats.duration));
      for (const auto& [t, rate] : l.samples)
        run_->counter_sample("link/" + l.name + " GB/s", base + t,
                             rate / 1e9);
    }

    // Exchange-phase record for obs/analysis.hpp (residuals + heatmaps):
    // netsim's LinkStats is converted here so obs stays netsim-free.
    obs::ExchangeRecord rec;
    rec.name = backend_name(plan_.options.backend);
    rec.begin = base;
    rec.duration = rc.phase.total;
    rec.nranks = plan_.nranks;
    rec.bytes_total = rc.bytes_total;
    rec.max_rank_bytes = rc.max_rank_bytes;
    rec.max_rank_msgs = rc.max_rank_msgs;
    rec.model_bandwidth = rc.model_bw;
    rec.per_message_cost = rc.per_msg_cost;
    rec.links.reserve(rc.stats.links.size());
    for (const net::LinkStats::Link& l : rc.stats.links) {
      if (l.capacity <= 0 || l.bytes <= 0) continue;
      obs::LinkUsage u;
      u.name = l.name;
      u.cls = net::link_class_name(l.name);
      u.capacity = l.capacity;
      u.bytes = l.bytes;
      u.samples = l.samples;
      rec.links.push_back(std::move(u));
    }
    run_->add_exchange(std::move(rec));
  }

  void run_fft(const Stage& s) {
    const int batch = plan_.options.batch;
    for (int axis : s.axes) {
      double max_fft = 0, max_pack = 0;
      bool any_strided = false;
      for (int r = 0; r < plan_.nranks; ++r) {
        const Box3& box = s.boxes[static_cast<std::size_t>(r)];
        if (box.empty()) continue;
        const int len = static_cast<int>(box.size(axis));
        const int lines = static_cast<int>(box.count() / len) * batch;
        const bool contiguous =
            axis == 2 || plan_.options.contiguous_fft;
        // Each rank owns its FFT plans (as each GPU owns cuFFT handles);
        // the first call with a new layout pays the plan-setup spike
        // unless the config declares the plans pre-warmed.
        const double t =
            (cfg_.warmed || !first_transform_)
                ? gpu::fft_cost(cfg_.device, len, lines, !contiguous)
                : caches_[static_cast<std::size_t>(r)].fft_call(
                      cfg_.device, len, lines, !contiguous);
        if (axis != 2 && plan_.options.contiguous_fft) {
          // Reorder path: two local transposes around the contiguous FFT.
          const double bytes =
              static_cast<double>(box.count()) * batch * sizeof(cplx);
          const double p =
              2.0 * gpu::pack_cost(cfg_.device, bytes, sizeof(cplx));
          if (run_ != nullptr && p > 0)
            run_->tracer.complete(r, obs::Category::Pack, "transpose",
                                  clocks_[static_cast<std::size_t>(r)], p);
          clocks_[static_cast<std::size_t>(r)] += p;
          max_pack = std::max(max_pack, p);
        }
        any_strided = any_strided || !contiguous;
        if (run_ != nullptr && t > 0)
          run_->tracer.complete(
              r, obs::Category::Fft,
              contiguous ? "fft(contiguous)" : "fft(strided)",
              clocks_[static_cast<std::size_t>(r)], t,
              run_->with_args()
                  ? std::vector<obs::SpanArg>{{"axis",
                                               static_cast<double>(axis)},
                                              {"len",
                                               static_cast<double>(len)}}
                  : std::vector<obs::SpanArg>{});
        clocks_[static_cast<std::size_t>(r)] += t;
        max_fft = std::max(max_fft, t);
      }
      report_.kernels.fft += max_fft;
      report_.kernels.pack += max_pack;
      report_.fft_calls.push_back(
          {any_strided ? "fft(strided)" : "fft(contiguous)", max_fft});
    }
  }

  const SimConfig& cfg_;
  const StagePlan& plan_;
  const net::CommCost& cost_;
  SimReport& report_;
  std::vector<gpu::PlanCache>& caches_;
  std::vector<double>& clocks_;
  obs::RunTrace* run_;  ///< nullptr when tracing is off
  std::vector<std::unique_ptr<ReshapeCosts>> reshape_cache_;
  bool first_transform_ = true;
};

}  // namespace

int BatchProfile::delivered(double work) const {
  int done = 0;
  for (std::size_t i = 0; i < frac.size(); ++i) {
    if (frac[i] <= work + 1e-12) done = elems[i];
  }
  return done;
}

double overlapped_batch_time(const StagePlan& plan,
                             const gpu::DeviceSpec& device,
                             const net::CommCost& cost,
                             net::TransferMode mode, net::MpiFlavor flavor,
                             int batch, const std::vector<int>& group_in,
                             BatchProfile* profile) {
  PARFFT_CHECK(batch >= 1, "batch must be positive");
  std::vector<int> group = group_in;
  if (group.empty()) {
    group.resize(static_cast<std::size_t>(plan.nranks));
    for (int r = 0; r < plan.nranks; ++r)
      group[static_cast<std::size_t>(r)] = r;
  }
  PARFFT_CHECK(static_cast<int>(group.size()) == plan.nranks,
               "group size must match the plan's rank count");

  // Per-stage costs for a chunk of b batch elements (max over ranks).
  // Reshape stages split into pack (GPU compute stream), exchange (network
  // stream) and unpack (compute stream) -- heFFTe's batched pipeline packs
  // one chunk while another chunk's exchange is in flight.
  struct StageCost {
    double pre = 0;   // pack, compute stream
    double comm = 0;  // exchange, network stream
    double post = 0;  // unpack, compute stream
  };
  auto stage_cost = [&](const Stage& s, int b) {
    StageCost c;
    if (s.kind == Stage::Kind::Reshape) {
      const net::PhaseTimes phase = cost.exchange(
          group, s.reshape.send_matrix(b), to_alg(plan.options.backend),
          mode, flavor);
      c.comm = phase.total;
      for (int r = 0; r < plan.nranks; ++r) {
        double p = 0, u = 0;
        for (const Transfer& tr : s.reshape.sends(r))
          p += gpu::pack_region_cost(
              device,
              static_cast<double>(tr.region.count() * b) * sizeof(cplx),
              pack_contiguous_run(s.reshape.from()[static_cast<std::size_t>(r)],
                                  tr.region));
        if (!s.reshape.sends(r).empty()) p += device.kernel_launch;
        for (const Transfer& tr : s.reshape.recvs(r))
          u += gpu::pack_region_cost(
              device,
              static_cast<double>(tr.region.count() * b) * sizeof(cplx),
              pack_contiguous_run(s.reshape.to()[static_cast<std::size_t>(r)],
                                  tr.region));
        if (!s.reshape.recvs(r).empty()) u += device.kernel_launch;
        c.pre = std::max(c.pre, p);
        c.post = std::max(c.post, u);
      }
    } else {
      for (int axis : s.axes) {
        double mx = 0;
        for (int r = 0; r < plan.nranks; ++r) {
          const Box3& box = s.boxes[static_cast<std::size_t>(r)];
          if (box.empty()) continue;
          const int len = static_cast<int>(box.size(axis));
          const int lines = static_cast<int>(box.count() / len) * b;
          const bool contiguous = axis == 2 || plan.options.contiguous_fft;
          mx = std::max(mx,
                        gpu::fft_cost(device, len, lines, !contiguous));
        }
        c.pre += mx;
      }
    }
    return c;
  };

  // heFFTe tunes the sub-batch granularity: few large chunks amortize
  // per-message latency, many small chunks overlap better. Evaluate the
  // pipeline schedule for each candidate and keep the fastest -- this is
  // the tuning the paper applies before reporting Fig. 13. Each chunk's
  // completion time is also its delivery point (its results have left the
  // device), recorded for the abort/partial-batch profile.
  struct Schedule {
    double total = 0;
    std::vector<int> chunk_batch;
    std::vector<double> chunk_done;
  };
  auto schedule = [&](int chunks) {
    Schedule out;
    out.chunk_batch.assign(static_cast<std::size_t>(chunks), batch / chunks);
    for (int c = 0; c < batch % chunks; ++c)
      ++out.chunk_batch[static_cast<std::size_t>(c)];
    gpu::StreamTimeline compute, comm;
    for (int c = 0; c < chunks; ++c) {
      double ready = 0;  // completion of this chunk's previous stage
      for (const Stage& s : plan.stages) {
        const StageCost sc =
            stage_cost(s, out.chunk_batch[static_cast<std::size_t>(c)]);
        if (sc.pre > 0) ready = compute.submit(ready, sc.pre);
        if (sc.comm > 0) ready = comm.submit(ready, sc.comm);
        if (sc.post > 0) ready = compute.submit(ready, sc.post);
      }
      out.chunk_done.push_back(ready);
      out.total = std::max(out.total, ready);
    }
    return out;
  };

  Schedule best = schedule(1);
  for (int chunks = 2; chunks <= std::min(batch, 8); ++chunks) {
    Schedule cand = schedule(chunks);
    if (cand.total < best.total) best = std::move(cand);
  }
  if (profile != nullptr) {
    *profile = BatchProfile{};
    int cum = 0;
    for (std::size_t c = 0; c < best.chunk_done.size(); ++c) {
      cum += best.chunk_batch[c];
      profile->elems.push_back(cum);
      profile->frac.push_back(best.total > 0
                                  ? best.chunk_done[c] / best.total
                                  : 1.0);
    }
  }
  return best.total;
}

SimReport simulate(const SimConfig& cfg) {
  PARFFT_CHECK(cfg.repeats >= 1, "repeats must be positive");
  SimConfig c = cfg;
  if (c.in_boxes.empty()) c.in_boxes = brick_layout(c.n, c.nranks);
  if (c.out_boxes.empty()) c.out_boxes = c.in_boxes;
  PARFFT_CHECK(static_cast<int>(c.in_boxes.size()) == c.nranks &&
                   static_cast<int>(c.out_boxes.size()) == c.nranks,
               "box layouts must have one entry per rank");

  const StagePlan plan = build_stages(c.n, c.nranks, c.in_boxes, c.out_boxes,
                                      c.options, c.machine);
  const net::RankMap map{c.machine.gpus_per_node};
  const net::CommCost cost(c.machine, map, c.nranks);

  SimReport report;
  report.resolved = plan.resolved;
  report.reshapes_per_transform = plan.reshape_count();

  if (plan.options.batch > 1 && plan.options.overlap_batches) {
    const double t = overlapped_batch_time(
        plan, c.device, cost,
        c.gpu_aware ? net::TransferMode::GpuAware : net::TransferMode::Staged,
        c.flavor, plan.options.batch);
    report.total = t * c.repeats;
    report.per_transform = t / plan.options.batch;
    report.rank_times.assign(static_cast<std::size_t>(c.nranks),
                             report.total);
    return report;
  }

  std::vector<double> clocks(static_cast<std::size_t>(c.nranks), 0.0);
  std::vector<gpu::PlanCache> caches(
      c.warmed ? 0 : static_cast<std::size_t>(c.nranks));
  // One RunTrace per simulate() call (nullptr when tracing is off); the
  // overlapped-batch path above is aggregate-only and is never traced.
  obs::RunTrace* run = obs::Session::global().begin_run(
      "simulate " + std::to_string(c.n[0]) + "x" + std::to_string(c.n[1]) +
          "x" + std::to_string(c.n[2]) + " " + std::to_string(c.nranks) +
          " ranks",
      c.nranks, c.options.trace);
  StageRunner runner(c, plan, cost, report, caches, clocks, run);
  for (int rep = 0; rep < c.repeats; ++rep) runner.run_transform();

  report.rank_times = clocks;
  report.total = *std::max_element(clocks.begin(), clocks.end());
  report.per_transform =
      report.total / (static_cast<double>(c.repeats) * plan.options.batch);
  // Kernel categories accumulated over all repeats; normalize to one
  // transform for reporting.
  const double inv = 1.0 / c.repeats;
  report.kernels.fft *= inv;
  report.kernels.pack *= inv;
  report.kernels.unpack *= inv;
  report.kernels.comm *= inv;
  report.kernels.scale *= inv;
  return report;
}

namespace {

SimConfig normalized(SimConfig cfg) {
  if (cfg.in_boxes.empty()) cfg.in_boxes = brick_layout(cfg.n, cfg.nranks);
  if (cfg.out_boxes.empty()) cfg.out_boxes = cfg.in_boxes;
  PARFFT_CHECK(static_cast<int>(cfg.in_boxes.size()) == cfg.nranks &&
                   static_cast<int>(cfg.out_boxes.size()) == cfg.nranks,
               "box layouts must have one entry per rank");
  return cfg;
}

}  // namespace

Simulator::Simulator(SimConfig cfg)
    : cfg_(normalized(std::move(cfg))),
      plan_(build_stages(cfg_.n, cfg_.nranks, cfg_.in_boxes, cfg_.out_boxes,
                         cfg_.options, cfg_.machine)),
      map_{cfg_.machine.gpus_per_node},
      cost_(cfg_.machine, map_, cfg_.nranks) {}

double Simulator::run_once(int batch, bool cold) {
  SimConfig c = cfg_;
  c.options.batch = batch;
  c.warmed = !cold;
  StagePlan p = plan_;
  p.options.batch = batch;
  SimReport scratch;
  std::vector<double> clocks(static_cast<std::size_t>(cfg_.nranks), 0.0);
  std::vector<gpu::PlanCache> caches(
      cold ? static_cast<std::size_t>(cfg_.nranks) : 0);
  StageRunner runner(c, p, cost_, scratch, caches, clocks, nullptr);
  runner.run_transform();
  return *std::max_element(clocks.begin(), clocks.end());
}

double Simulator::transform_time(int batch, bool cold) {
  PARFFT_CHECK(batch >= 1, "batch must be positive");
  const std::pair<int, bool> key{batch, cold};
  if (auto it = memo_.find(key); it != memo_.end()) return it->second;
  double t;
  if (batch > 1 && cfg_.options.overlap_batches) {
    t = overlapped_batch_time(
        plan_, cfg_.device, cost_,
        cfg_.gpu_aware ? net::TransferMode::GpuAware
                       : net::TransferMode::Staged,
        cfg_.flavor, batch);
  } else {
    t = run_once(batch, cold);
  }
  memo_.emplace(key, t);
  return t;
}

double Simulator::plan_setup_time() {
  return transform_time(1, /*cold=*/true) - transform_time(1, /*cold=*/false);
}

BatchProfile Simulator::batch_profile(int batch) {
  PARFFT_CHECK(batch >= 1, "batch must be positive");
  if (auto it = profile_memo_.find(batch); it != profile_memo_.end())
    return it->second;
  BatchProfile profile;
  if (batch > 1 && cfg_.options.overlap_batches) {
    overlapped_batch_time(plan_, cfg_.device, cost_,
                          cfg_.gpu_aware ? net::TransferMode::GpuAware
                                         : net::TransferMode::Staged,
                          cfg_.flavor, batch, {}, &profile);
  } else {
    // Single-chunk execution: nothing leaves the device until the end.
    profile.elems = {batch};
    profile.frac = {1.0};
  }
  profile_memo_.emplace(batch, profile);
  return profile;
}

void Simulator::set_nic_scale(double scale) {
  if (scale == cost_.flowsim().nic_scale()) return;
  cost_.flowsim().set_nic_scale(scale);
  memo_.clear();
  profile_memo_.clear();
}

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n\r") == std::string::npos) return field;
  std::string out = "\"";
  for (char ch : field) {
    if (ch == '"') out += '"';  // RFC 4180: double embedded quotes
    out += ch;
  }
  out += '"';
  return out;
}

void write_call_csv(const SimReport& report, std::ostream& os) {
  // Schema: kind,index,name,seconds
  //   kind    -- "comm" (one row per reshape execution) or "fft" (one row
  //              per FFT stage axis)
  //   index   -- 1-based position within its kind, in execution order
  //   name    -- MPI routine or kernel label, RFC 4180-quoted if it
  //              contains commas, quotes or newlines
  //   seconds -- virtual duration (max over ranks) of that call
  os << "kind,index,name,seconds\n";
  for (std::size_t i = 0; i < report.comm_calls.size(); ++i)
    os << "comm," << i + 1 << ',' << csv_escape(report.comm_calls[i].name)
       << ',' << report.comm_calls[i].seconds << '\n';
  for (std::size_t i = 0; i < report.fft_calls.size(); ++i)
    os << "fft," << i + 1 << ',' << csv_escape(report.fft_calls[i].name)
       << ',' << report.fft_calls[i].seconds << '\n';
}

}  // namespace parfft::core
