#pragma once
/// \file spectral.hpp
/// Application-level spectral utilities built on the distributed FFT --
/// the operations the paper's motivating applications run between
/// transforms (convolutions for PME/pattern recognition, pointwise filters
/// for pseudo-spectral solvers), plus a standalone distributed reshape for
/// codes that only need the data-movement layer.

#include <functional>
#include <vector>

#include "core/fft3d.hpp"

namespace parfft::core {

/// Circular (periodic) convolution of two distributed fields:
/// out = ifft(fft(a) * fft(b)) / N. `a`, `b` and `out` are local bricks in
/// `fft`'s inbox layout; the pointwise product happens in the outbox
/// layout. Collective.
void spectral_convolve(Fft3D& fft, const std::vector<cplx>& a,
                       const std::vector<cplx>& b, std::vector<cplx>& out);

/// Applies a spectral filter in place: data <- ifft(filter(k) * fft(data))
/// with Full scaling. `filter` receives the global mode indices of each
/// local spectrum element (axis order 0,1,2). Generalizes the Poisson /
/// heat / dealiasing kernels of the examples. Collective.
void apply_spectral_filter(
    Fft3D& fft, std::vector<cplx>& data,
    const std::function<cplx(idx_t, idx_t, idx_t)>& filter);

/// Standalone distributed reshape (heFFTe also exposes its reshape layer):
/// moves `in` (this rank's `from` brick) into `out` (this rank's `to`
/// brick) across `comm`, using the given exchange backend. The union of
/// all ranks' boxes must match on both sides. Collective.
void distributed_reshape(smpi::Comm& comm, const Box3& from, const Box3& to,
                         const std::vector<cplx>& in, std::vector<cplx>& out,
                         Backend backend = Backend::Alltoallv);

}  // namespace parfft::core
