#pragma once
/// \file stages.hpp
/// Builds the stage pipeline of the paper's Algorithm 1: a sequence of
/// reshapes and local FFT stages realizing a slab, pencil or brick
/// decomposition, including input/output remaps from arbitrary brick grids
/// and the FFT grid-shrinking feature. The result is pure data, consumed
/// identically by the threaded executor (core/plan) and the at-scale
/// simulator (core/simulate).

#include <array>
#include <string>
#include <vector>

#include "core/reshape.hpp"
#include "netsim/machine.hpp"
#include "obs/tracer.hpp"

namespace parfft::core {

/// Decomposition strategies of Fig. 1. Auto picks slab vs pencil with the
/// paper's bandwidth model (Section IV-A).
enum class Decomposition { Auto, Slab, Pencil, Brick };

/// Communication backends of Table I.
enum class Backend {
  Alltoall,        ///< MPI_Alltoall (padded blocks)
  Alltoallv,       ///< MPI_Alltoallv (exact counts)
  Alltoallw,       ///< MPI_Alltoallw + sub-array datatypes (Algorithm 2)
  P2PBlocking,     ///< MPI_Send + MPI_Irecv + MPI_Waitany
  P2PNonBlocking,  ///< MPI_Isend + MPI_Irecv + MPI_Waitany
};

net::CollectiveAlg to_alg(Backend b);
/// Human-readable MPI routine name ("MPI_Alltoallv", ...) for traces.
std::string backend_name(Backend b);
bool backend_is_p2p(Backend b);
bool backend_is_datatype(Backend b);

/// Normalization applied after a backward transform.
enum class Scaling { None, Full };

struct PlanOptions {
  Decomposition decomp = Decomposition::Auto;
  Backend backend = Backend::Alltoallv;
  /// heFFTe's reorder option: locally transpose so 1-D FFT input is
  /// contiguous (extra packing) instead of running strided FFTs.
  bool contiguous_fft = false;
  /// Batched transforms: number of 3-D FFTs executed together.
  int batch = 1;
  /// FFT grid shrinking: if > 0 and smaller than the communicator, only
  /// this many ranks take part in the FFT stages; data is remapped pre and
  /// post computation (Algorithm 1, line 2).
  int shrink_to = 0;
  /// Overlap communication and computation across batch sub-chunks
  /// (simulate-mode timing; the source of the Fig. 13 speedup).
  bool overlap_batches = true;
  Scaling scaling = Scaling::None;
  /// Span/metric recording for this plan's executions (simulate mode). Also
  /// switched on globally by the PARFFT_TRACE environment variable.
  obs::TraceConfig trace;
};

/// One pipeline step.
struct Stage {
  enum class Kind { Reshape, Fft };
  Kind kind = Kind::Fft;
  ReshapePlan reshape;        ///< Kind::Reshape
  std::vector<int> axes;      ///< Kind::Fft: global axes transformed
  std::vector<Box3> boxes;    ///< Kind::Fft: per-rank layout during compute
};

struct StagePlan {
  std::array<int, 3> n{};
  int nranks = 0;
  int compute_ranks = 0;          ///< after grid shrinking
  Decomposition resolved = Decomposition::Pencil;
  PlanOptions options;
  std::vector<Stage> stages;

  idx_t total_elements() const {
    return static_cast<idx_t>(n[0]) * n[1] * n[2];
  }
  /// Largest local footprint of `rank` across all stages, in elements
  /// (work-buffer sizing), for one batch element.
  idx_t max_work_elements(int rank) const;
  /// Number of reshape stages (the paper counts these as the
  /// communication phases: 1 for slabs, 2 for pencils, 4 for bricks, plus
  /// input/output remaps).
  int reshape_count() const;
};

/// Builds the pipeline. `in_boxes` / `out_boxes` give each rank's brick
/// before and after the transform (pad_boxes-style empties allowed); both
/// must cover the full index space. The machine spec feeds the Auto
/// decomposition model. 2-D transforms (n[0] == 1) are supported: the two
/// axes are transformed through one intermediate transfer, whatever
/// decomposition is requested.
StagePlan build_stages(const std::array<int, 3>& n, int nranks,
                       std::vector<Box3> in_boxes,
                       std::vector<Box3> out_boxes, const PlanOptions& opt,
                       const net::MachineSpec& machine);

/// Builds a partial pipeline transforming only `axes` (in order), each on
/// its pencil grid, between the given layouts. Used by the distributed
/// real-to-complex transform, whose first axis is handled separately by
/// the real engine.
StagePlan build_partial_stages(const std::array<int, 3>& n, int nranks,
                               std::vector<Box3> in_boxes,
                               std::vector<Box3> out_boxes,
                               const std::vector<int>& axes,
                               const PlanOptions& opt);

}  // namespace parfft::core
