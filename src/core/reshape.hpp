#pragma once
/// \file reshape.hpp
/// Global reshape planning: given the brick each rank owns before and after
/// a transfer phase, compute every rank's send/receive lists by box
/// intersection. This is the "transfer / remap / reshape" step of the
/// paper's Algorithm 1 (and the sub-array exchange of Algorithm 2), and is
/// pure index math -- shared verbatim by the threaded executor and the
/// at-scale simulator so both use identical communication patterns.

#include <vector>

#include "core/box.hpp"
#include "netsim/collectives.hpp"

namespace parfft::core {

/// One transfer: the overlap `region` (global coordinates) exchanged with
/// `peer` (rank index).
struct Transfer {
  int peer = -1;
  Box3 region;
};

class ReshapePlan {
 public:
  /// Builds the plan for moving data from layout `from` to layout `to`
  /// (one box per rank; empty boxes mean the rank holds nothing). The two
  /// layouts must cover the same index set for the data to be preserved --
  /// not checked here, but guaranteed by the stage builder.
  static ReshapePlan create(std::vector<Box3> from, std::vector<Box3> to);

  int nranks() const { return static_cast<int>(from_.size()); }
  const std::vector<Box3>& from() const { return from_; }
  const std::vector<Box3>& to() const { return to_; }
  /// Transfers rank `r` sends, ascending by peer (self included).
  const std::vector<Transfer>& sends(int r) const;
  /// Transfers rank `r` receives, ascending by peer (self included).
  const std::vector<Transfer>& recvs(int r) const;

  /// True when every rank keeps exactly its own data (no communication).
  bool is_identity() const;

  /// Sparse byte matrix for the cost model; `batch` scales every payload
  /// (batched transforms fuse the batch into each message). Self-overlaps
  /// are included (they cost a local copy).
  net::SendMatrix send_matrix(int batch = 1) const;

  /// Total bytes rank `r` sends to other ranks (excluding self).
  double send_bytes(int r, int batch = 1) const;

  /// Largest packed send/recv footprint over all ranks, in elements
  /// (buffer sizing).
  idx_t max_send_elements(int r) const;
  idx_t max_recv_elements(int r) const;

 private:
  std::vector<Box3> from_, to_;
  std::vector<std::vector<Transfer>> sends_, recvs_;
};

}  // namespace parfft::core
