#include "core/real_plan.hpp"

#include <cstring>

#include "common/error.hpp"
#include "core/pack.hpp"
#include "core/simulate.hpp"

namespace parfft::core {

namespace {

PlanOptions inner_options(PlanOptions opt) {
  opt.scaling = Scaling::None;  // normalization applied once, at the end
  return opt;
}

int compute_ranks_of(const PlanOptions& opt, int nranks) {
  return (opt.shrink_to > 0 && opt.shrink_to < nranks) ? opt.shrink_to
                                                       : nranks;
}

/// Records a leaf span ending at the communicator's current virtual time.
void leaf_span(smpi::Comm& comm, obs::Category cat, const char* name,
               double t) {
  if (obs::RunTrace* run = comm.trace_run(); run != nullptr && t > 0)
    run->tracer.complete(comm.world_rank(), cat, name, comm.vtime() - t, t);
}

}  // namespace

RealPlan3D::RealPlan3D(smpi::Comm& comm, const std::array<int, 3>& n,
                       const Box3& in_real, const Box3& out_spec,
                       const PlanOptions& opt)
    : comm_(comm), n_(n), nc_(spectrum_dims(n)), opt_(opt),
      dev_(comm.options().device), in_real_(in_real), out_spec_(out_spec),
      zreal_(), zspec_(),
      real_fwd_(), real_bwd_(),
      complex_fwd_([&] {
        const int cr = compute_ranks_of(opt, comm.size());
        auto zspec_all = grid_boxes(nc_, pencil_grid(cr, 2), comm.size());
        auto out_all = allgather_boxes(comm, out_spec);
        const Box3 zspec_me =
            zspec_all[static_cast<std::size_t>(comm.rank())];
        return Plan3D(comm,
                      build_partial_stages(nc_, comm.size(),
                                           std::move(zspec_all),
                                           std::move(out_all), {1, 0},
                                           inner_options(opt)),
                      zspec_me, out_spec);
      }()),
      complex_bwd_([&] {
        const int cr = compute_ranks_of(opt, comm.size());
        auto zspec_all = grid_boxes(nc_, pencil_grid(cr, 2), comm.size());
        auto out_all = allgather_boxes(comm, out_spec);
        const Box3 zspec_me =
            zspec_all[static_cast<std::size_t>(comm.rank())];
        return Plan3D(comm,
                      build_partial_stages(nc_, comm.size(),
                                           std::move(out_all),
                                           std::move(zspec_all), {0, 1},
                                           inner_options(opt)),
                      out_spec, zspec_me);
      }()),
      line_(n[2]) {
  PARFFT_CHECK(opt.batch == 1,
               "batched real transforms are not supported; batch complex "
               "transforms instead");
  const int cr = compute_ranks_of(opt, comm.size());
  const auto zreal_all = grid_boxes(n_, pencil_grid(cr, 2), comm.size());
  const auto zspec_all = grid_boxes(nc_, pencil_grid(cr, 2), comm.size());
  zreal_ = zreal_all[static_cast<std::size_t>(comm.rank())];
  zspec_ = zspec_all[static_cast<std::size_t>(comm.rank())];
  auto in_all = allgather_boxes(comm, in_real);
  real_fwd_ = ReshapePlan::create(in_all, zreal_all);
  real_bwd_ = ReshapePlan::create(zreal_all, in_all);
  rwork_.resize(static_cast<std::size_t>(zreal_.count()));
  cwork_.resize(static_cast<std::size_t>(zspec_.count()));
}

void RealPlan3D::exchange_real(const ReshapePlan& rp, const double* in,
                               double* out) {
  const int R = comm_.size();
  const int me = comm_.rank();
  const Box3& from = rp.from()[static_cast<std::size_t>(me)];
  const Box3& to = rp.to()[static_cast<std::size_t>(me)];
  // The real stage supports the collective data paths; P2P and datatype
  // backends fall back to Alltoallv here (heFFTe's r2c does the same:
  // the first reshape is always a packed exchange).
  const net::CollectiveAlg alg = opt_.backend == Backend::Alltoall
                                     ? net::CollectiveAlg::Alltoall
                                     : net::CollectiveAlg::Alltoallv;

  std::vector<std::size_t> scounts(static_cast<std::size_t>(R), 0),
      sdispls(static_cast<std::size_t>(R), 0),
      rcounts(static_cast<std::size_t>(R), 0),
      rdispls(static_cast<std::size_t>(R), 0);
  std::vector<double> sendbuf(static_cast<std::size_t>(rp.max_send_elements(me)));
  std::vector<double> recvbuf(static_cast<std::size_t>(rp.max_recv_elements(me)));

  double pack_t = 0;
  idx_t off = 0;
  for (const Transfer& t : rp.sends(me)) {
    const idx_t cnt = t.region.count();
    scounts[static_cast<std::size_t>(t.peer)] =
        static_cast<std::size_t>(cnt) * sizeof(double);
    sdispls[static_cast<std::size_t>(t.peer)] =
        static_cast<std::size_t>(off) * sizeof(double);
    pack_box_t(in, from, t.region, sendbuf.data() + off);
    pack_t += gpu::pack_region_cost(dev_,
                                    static_cast<double>(cnt) * sizeof(double),
                                    pack_contiguous_run(from, t.region) / 2);
    off += cnt;
  }
  if (!rp.sends(me).empty()) pack_t += dev_.kernel_launch;
  comm_.advance(pack_t);
  trace_.add_pack(pack_t);
  leaf_span(comm_, obs::Category::Pack, "pack", pack_t);

  idx_t roff = 0;
  for (const Transfer& t : rp.recvs(me)) {
    const idx_t cnt = t.region.count();
    rcounts[static_cast<std::size_t>(t.peer)] =
        static_cast<std::size_t>(cnt) * sizeof(double);
    rdispls[static_cast<std::size_t>(t.peer)] =
        static_cast<std::size_t>(roff) * sizeof(double);
    roff += cnt;
  }

  const double t0 = comm_.vtime();
  comm_.alltoallv(sendbuf.data(), scounts, sdispls, recvbuf.data(), rcounts,
                  rdispls, smpi::MemSpace::Device, alg);
  trace_.add_comm(alg == net::CollectiveAlg::Alltoall ? "MPI_Alltoall"
                                                      : "MPI_Alltoallv",
                  comm_.vtime() - t0);

  double unpack_t = 0;
  idx_t uoff = 0;
  for (const Transfer& t : rp.recvs(me)) {
    const idx_t cnt = t.region.count();
    unpack_box_t(recvbuf.data() + uoff, to, t.region, out);
    unpack_t += gpu::pack_region_cost(
        dev_, static_cast<double>(cnt) * sizeof(double),
        pack_contiguous_run(to, t.region) / 2);
    uoff += cnt;
  }
  if (!rp.recvs(me).empty()) unpack_t += dev_.kernel_launch;
  comm_.advance(unpack_t);
  trace_.add_unpack(unpack_t);
  leaf_span(comm_, obs::Category::Unpack, "unpack", unpack_t);
}

void RealPlan3D::forward(const double* in, cplx* out) {
  std::fill(rwork_.begin(), rwork_.end(), 0.0);
  exchange_real(real_fwd_, in, rwork_.data());

  // Local r2c along the full axis 2 of the z-pencil.
  const idx_t lines = zreal_.size(0) * zreal_.size(1);
  const idx_t nc2 = zspec_.size(2);
  for (idx_t l = 0; l < lines; ++l)
    line_.r2c(rwork_.data() + l * n_[2], cwork_.data() + l * nc2);
  // An r2c costs roughly 60% of the complex transform of the same length.
  const double t = lines > 0
                       ? 0.6 * gpu::fft_cost(dev_, n_[2],
                                             static_cast<int>(lines), false)
                       : 0.0;
  comm_.advance(t);
  trace_.add_fft(t, false);
  leaf_span(comm_, obs::Category::Fft, "r2c", t);

  complex_fwd_.execute(cwork_.data(), out, dft::Direction::Forward);
}

void RealPlan3D::backward(const cplx* in, double* out) {
  complex_bwd_.execute(in, cwork_.data(), dft::Direction::Backward);

  const idx_t lines = zreal_.size(0) * zreal_.size(1);
  const idx_t nc2 = zspec_.size(2);
  for (idx_t l = 0; l < lines; ++l)
    line_.c2r(cwork_.data() + l * nc2, rwork_.data() + l * n_[2]);
  const double t = lines > 0
                       ? 0.6 * gpu::fft_cost(dev_, n_[2],
                                             static_cast<int>(lines), false)
                       : 0.0;
  comm_.advance(t);
  trace_.add_fft(t, false);
  leaf_span(comm_, obs::Category::Fft, "c2r", t);

  exchange_real(real_bwd_, rwork_.data(), out);

  if (opt_.scaling == Scaling::Full) {
    const double inv =
        1.0 / (static_cast<double>(n_[0]) * n_[1] * n_[2]);
    const idx_t cnt = in_real_.count();
    for (idx_t i = 0; i < cnt; ++i) out[i] *= inv;
    const double ts = gpu::pointwise_cost(
        dev_, static_cast<double>(cnt) * sizeof(double));
    comm_.advance(ts);
    trace_.add_scale(ts);
    leaf_span(comm_, obs::Category::Scale, "scale", ts);
  }
}

KernelTimes RealPlan3D::kernels() const {
  KernelTimes k = trace_.kernels();
  k += complex_fwd_.trace().kernels();
  k += complex_bwd_.trace().kernels();
  return k;
}

void RealPlan3D::clear_trace() {
  trace_.clear();
  complex_fwd_.trace().clear();
  complex_bwd_.trace().clear();
}

}  // namespace parfft::core
