#pragma once
/// \file plan.hpp
/// The distributed 3-D FFT plan -- the paper's Algorithm 1 (and, with the
/// Alltoallw backend, Algorithm 2) executed on the simulated MPI runtime.
///
/// A plan is created collectively: every rank passes its input and output
/// brick (arbitrary grids are supported, as in heFFTe/fftMPI/SWFFT), the
/// options select decomposition / backend / reorder / batching / grid
/// shrinking, and execute() runs forward or backward transforms on real
/// data while charging Summit-like virtual time to each rank's clock.

#include <array>
#include <vector>

#include "core/stages.hpp"
#include "core/trace.hpp"
#include "fft/plan1d.hpp"
#include "simmpi/runtime.hpp"

namespace parfft::core {

class Plan3D {
 public:
  /// Collective constructor (all ranks of `comm` must call it with the
  /// same `n` and options). `inbox`/`outbox` are this rank's bricks.
  Plan3D(smpi::Comm& comm, const std::array<int, 3>& n, const Box3& inbox,
         const Box3& outbox, const PlanOptions& opt);

  /// Wraps a prebuilt stage pipeline (e.g. build_partial_stages, used by
  /// the distributed real transform). `inbox`/`outbox` are this rank's
  /// layouts at entry and exit; not a collective (the plan already
  /// contains every rank's view).
  Plan3D(smpi::Comm& comm, StagePlan plan, const Box3& inbox,
         const Box3& outbox);

  /// Executes options.batch transforms. `in` holds batch-major local
  /// bricks of the input layout (batch * inbox().count() elements); `out`
  /// receives batch * outbox().count() elements. In-place (in == out) is
  /// allowed when the buffer fits both layouts. Forward is unnormalized;
  /// Backward applies options.scaling.
  ///
  /// With options.batch > 1 and options.overlap_batches, the data still
  /// moves stage by stage (bit-exact results), but the virtual-time
  /// charge is the two-stream pipelined schedule of Fig. 13 -- the same
  /// core::overlapped_batch_time() the at-scale simulator prices, so both
  /// execution modes report identical batched costs. The per-category
  /// trace() breakdown keeps the sequential component times (their sum
  /// exceeds the pipelined wall time by exactly the overlapped portion).
  void execute(const cplx* in, cplx* out, dft::Direction dir);

  const StagePlan& stage_plan() const { return plan_; }
  const Box3& inbox() const { return inbox_; }
  const Box3& outbox() const { return outbox_; }
  idx_t input_elements() const {
    return inbox_.count() * plan_.options.batch;
  }
  idx_t output_elements() const {
    return outbox_.count() * plan_.options.batch;
  }

  /// Virtual-time accounting for this rank; clear between measurements.
  Trace& trace() { return trace_; }
  const Trace& trace() const { return trace_; }

 private:
  /// Aligns every rank's clock on the max entry clock (no virtual-time
  /// charge) and gathers the communicator's world ranks; returns the
  /// common base time the overlapped schedule is charged from.
  double overlap_entry_sync();
  /// Rewrites every rank's clock to `base` + the pipelined batch time.
  void overlap_settle(double base);
  void run_reshape(const Stage& stage, int tag_base);
  void run_reshape_collective(const Stage& stage);
  void run_reshape_datatype(const Stage& stage);
  void run_reshape_p2p(const Stage& stage, int tag_base);
  void run_fft(const Stage& stage, dft::Direction dir);
  void apply_scaling(const std::vector<Box3>& layout);

  smpi::Comm& comm_;
  StagePlan plan_;
  Box3 inbox_, outbox_;
  gpu::DeviceSpec dev_;
  gpu::PlanCache fft_cache_;
  smpi::MemSpace space_ = smpi::MemSpace::Device;
  Trace trace_;
  // Work buffers: batch-major local bricks of the current layout.
  std::vector<cplx> work_, work2_, sendbuf_, recvbuf_;
  std::vector<int> overlap_group_;  ///< world ranks, gathered on first use
  int tag_counter_ = 100;
};

/// Convenience: gathers every rank's box (collective).
std::vector<Box3> allgather_boxes(smpi::Comm& comm, const Box3& mine);

}  // namespace parfft::core
