// trace.hpp is header-only; this translation unit exists so the target has
// a stable archive member for the class (and a home for future expansion).
#include "core/trace.hpp"
