#include "core/trace.hpp"

#include <utility>

namespace parfft::core {

void Trace::add(obs::Category cat, std::string name, double t) {
  calls_.push_back({std::move(name), t, cat});
}

KernelTimes Trace::kernels() const {
  KernelTimes k;
  for (const CallRecord& c : calls_) {
    switch (c.cat) {
      case obs::Category::Fft:
        k.fft += c.seconds;
        break;
      case obs::Category::Pack:
        k.pack += c.seconds;
        break;
      case obs::Category::Unpack:
        k.unpack += c.seconds;
        break;
      case obs::Category::Scale:
        k.scale += c.seconds;
        break;
      default:  // Exchange / Wait / Send / Collective: communication time
        k.comm += c.seconds;
        break;
    }
  }
  return k;
}

std::vector<CallRecord> Trace::comm_calls() const {
  std::vector<CallRecord> out;
  for (const CallRecord& c : calls_)
    if (c.cat == obs::Category::Exchange) out.push_back(c);
  return out;
}

std::vector<CallRecord> Trace::fft_calls() const {
  std::vector<CallRecord> out;
  for (const CallRecord& c : calls_)
    if (c.cat == obs::Category::Fft) out.push_back(c);
  return out;
}

}  // namespace parfft::core
