#pragma once
/// \file tune.hpp
/// The paper's tuning methodology (Section IV) as a library feature:
/// enumerate the feasible algorithmic settings (decomposition x exchange
/// family x GPU awareness x data layout), predict each with the simulator,
/// and return the fastest. This is the procedure behind Fig. 5's "best
/// setting regions" and the Fig. 12 application speedup.

#include <string>
#include <utility>
#include <vector>

#include "core/simulate.hpp"

namespace parfft::core {

/// One algorithmic configuration under consideration.
struct TuneCandidate {
  Decomposition decomp = Decomposition::Pencil;
  Backend backend = Backend::Alltoallv;
  bool gpu_aware = true;
  bool contiguous_fft = false;

  std::string describe() const;
};

struct TuneReport {
  TuneCandidate best;
  double best_time = 0;  ///< predicted seconds per transform
  /// Every evaluated candidate with its prediction, fastest first.
  std::vector<std::pair<TuneCandidate, double>> evaluated;
};

struct TuneOptions {
  /// Also sweep the contiguous-vs-strided local-FFT layout (doubles the
  /// candidate count).
  bool sweep_layout = false;
  /// Also sweep GPU-awareness off (the heFFTe -no-gpu-aware flag).
  bool sweep_gpu_aware = true;
};

/// Evaluates candidates on `base` (its options.decomp/backend and
/// gpu_aware fields are overridden per candidate) and returns the ranking.
/// Slab candidates are skipped when infeasible (nranks > axis lengths).
TuneReport autotune(const SimConfig& base, const TuneOptions& topt = {});

/// Applies the winner to a PlanOptions / gpu_aware pair.
void apply(const TuneCandidate& c, PlanOptions* opt, bool* gpu_aware);

}  // namespace parfft::core
