#pragma once
/// \file fft3d.hpp
/// High-level facade mirroring heFFTe's user API: construct from the
/// local input/output boxes, then call forward()/backward() on vectors,
/// with an explicit scale argument. Thin sugar over Plan3D/RealPlan3D for
/// application code that wants the familiar shape:
///
///   core::Fft3D fft(comm, n, inbox, outbox, options);
///   fft.forward(input, output);
///   fft.backward(output, roundtrip, core::Scale::Full);
///
/// (heFFTe: heffte::fft3d<backend::cufft> fft(inbox, outbox, comm);
///  fft.forward(input.data(), output.data(), heffte::scale::full);)

#include <array>
#include <memory>
#include <vector>

#include "core/plan.hpp"

namespace parfft::core {

/// Normalization applied by a single call (heFFTe's scale enum).
enum class Scale { None, Full, Symmetric };

class Fft3D {
 public:
  /// Collective constructor over `comm`.
  Fft3D(smpi::Comm& comm, const std::array<int, 3>& n, const Box3& inbox,
        const Box3& outbox, const PlanOptions& opt = {});

  /// Elements this rank holds before / after a forward transform, per
  /// batch element.
  idx_t size_inbox() const { return plan_.inbox().count(); }
  idx_t size_outbox() const { return plan_.outbox().count(); }

  /// Forward transform; `in.size()` must be batch * size_inbox().
  void forward(const std::vector<cplx>& in, std::vector<cplx>& out,
               Scale scale = Scale::None);

  /// Backward transform: consumes data in the *outbox* layout and
  /// produces the *inbox* layout, like heFFTe (a reversed pipeline is
  /// created on demand when the two layouts differ).
  void backward(const std::vector<cplx>& in, std::vector<cplx>& out,
                Scale scale = Scale::None);

  Plan3D& plan() { return plan_; }
  const Plan3D& plan() const { return plan_; }

 private:
  void apply_scale(std::vector<cplx>& data, Scale scale);

  smpi::Comm& comm_;
  std::array<int, 3> n_;
  PlanOptions opt_;
  idx_t total_;
  Plan3D plan_;
  std::unique_ptr<Plan3D> bwd_;  ///< reversed pipeline (asymmetric layouts)
};

}  // namespace parfft::core
