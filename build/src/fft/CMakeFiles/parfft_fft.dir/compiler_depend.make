# Empty compiler generated dependencies file for parfft_fft.
# This may be replaced when dependencies are built.
