file(REMOVE_RECURSE
  "CMakeFiles/parfft_fft.dir/bluestein.cpp.o"
  "CMakeFiles/parfft_fft.dir/bluestein.cpp.o.d"
  "CMakeFiles/parfft_fft.dir/factorize.cpp.o"
  "CMakeFiles/parfft_fft.dir/factorize.cpp.o.d"
  "CMakeFiles/parfft_fft.dir/many.cpp.o"
  "CMakeFiles/parfft_fft.dir/many.cpp.o.d"
  "CMakeFiles/parfft_fft.dir/plan1d.cpp.o"
  "CMakeFiles/parfft_fft.dir/plan1d.cpp.o.d"
  "CMakeFiles/parfft_fft.dir/real.cpp.o"
  "CMakeFiles/parfft_fft.dir/real.cpp.o.d"
  "CMakeFiles/parfft_fft.dir/reference.cpp.o"
  "CMakeFiles/parfft_fft.dir/reference.cpp.o.d"
  "libparfft_fft.a"
  "libparfft_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parfft_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
