
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fft/bluestein.cpp" "src/fft/CMakeFiles/parfft_fft.dir/bluestein.cpp.o" "gcc" "src/fft/CMakeFiles/parfft_fft.dir/bluestein.cpp.o.d"
  "/root/repo/src/fft/factorize.cpp" "src/fft/CMakeFiles/parfft_fft.dir/factorize.cpp.o" "gcc" "src/fft/CMakeFiles/parfft_fft.dir/factorize.cpp.o.d"
  "/root/repo/src/fft/many.cpp" "src/fft/CMakeFiles/parfft_fft.dir/many.cpp.o" "gcc" "src/fft/CMakeFiles/parfft_fft.dir/many.cpp.o.d"
  "/root/repo/src/fft/plan1d.cpp" "src/fft/CMakeFiles/parfft_fft.dir/plan1d.cpp.o" "gcc" "src/fft/CMakeFiles/parfft_fft.dir/plan1d.cpp.o.d"
  "/root/repo/src/fft/real.cpp" "src/fft/CMakeFiles/parfft_fft.dir/real.cpp.o" "gcc" "src/fft/CMakeFiles/parfft_fft.dir/real.cpp.o.d"
  "/root/repo/src/fft/reference.cpp" "src/fft/CMakeFiles/parfft_fft.dir/reference.cpp.o" "gcc" "src/fft/CMakeFiles/parfft_fft.dir/reference.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/parfft_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
