file(REMOVE_RECURSE
  "libparfft_fft.a"
)
