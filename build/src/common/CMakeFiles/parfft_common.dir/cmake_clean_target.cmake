file(REMOVE_RECURSE
  "libparfft_common.a"
)
