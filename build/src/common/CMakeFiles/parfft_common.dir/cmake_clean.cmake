file(REMOVE_RECURSE
  "CMakeFiles/parfft_common.dir/ascii_plot.cpp.o"
  "CMakeFiles/parfft_common.dir/ascii_plot.cpp.o.d"
  "CMakeFiles/parfft_common.dir/error.cpp.o"
  "CMakeFiles/parfft_common.dir/error.cpp.o.d"
  "CMakeFiles/parfft_common.dir/table.cpp.o"
  "CMakeFiles/parfft_common.dir/table.cpp.o.d"
  "CMakeFiles/parfft_common.dir/units.cpp.o"
  "CMakeFiles/parfft_common.dir/units.cpp.o.d"
  "libparfft_common.a"
  "libparfft_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parfft_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
