# Empty compiler generated dependencies file for parfft_common.
# This may be replaced when dependencies are built.
