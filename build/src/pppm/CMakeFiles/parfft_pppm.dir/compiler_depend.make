# Empty compiler generated dependencies file for parfft_pppm.
# This may be replaced when dependencies are built.
