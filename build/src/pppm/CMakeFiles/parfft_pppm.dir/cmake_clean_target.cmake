file(REMOVE_RECURSE
  "libparfft_pppm.a"
)
