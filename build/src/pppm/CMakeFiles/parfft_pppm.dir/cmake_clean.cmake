file(REMOVE_RECURSE
  "CMakeFiles/parfft_pppm.dir/ewald.cpp.o"
  "CMakeFiles/parfft_pppm.dir/ewald.cpp.o.d"
  "CMakeFiles/parfft_pppm.dir/proxy.cpp.o"
  "CMakeFiles/parfft_pppm.dir/proxy.cpp.o.d"
  "CMakeFiles/parfft_pppm.dir/solver.cpp.o"
  "CMakeFiles/parfft_pppm.dir/solver.cpp.o.d"
  "libparfft_pppm.a"
  "libparfft_pppm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parfft_pppm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
