file(REMOVE_RECURSE
  "CMakeFiles/parfft_simmpi.dir/runtime.cpp.o"
  "CMakeFiles/parfft_simmpi.dir/runtime.cpp.o.d"
  "libparfft_simmpi.a"
  "libparfft_simmpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parfft_simmpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
