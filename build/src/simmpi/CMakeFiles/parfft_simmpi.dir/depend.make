# Empty dependencies file for parfft_simmpi.
# This may be replaced when dependencies are built.
