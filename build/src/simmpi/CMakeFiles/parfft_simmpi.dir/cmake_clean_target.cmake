file(REMOVE_RECURSE
  "libparfft_simmpi.a"
)
