
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/box.cpp" "src/core/CMakeFiles/parfft_core.dir/box.cpp.o" "gcc" "src/core/CMakeFiles/parfft_core.dir/box.cpp.o.d"
  "/root/repo/src/core/fft3d.cpp" "src/core/CMakeFiles/parfft_core.dir/fft3d.cpp.o" "gcc" "src/core/CMakeFiles/parfft_core.dir/fft3d.cpp.o.d"
  "/root/repo/src/core/grids.cpp" "src/core/CMakeFiles/parfft_core.dir/grids.cpp.o" "gcc" "src/core/CMakeFiles/parfft_core.dir/grids.cpp.o.d"
  "/root/repo/src/core/pack.cpp" "src/core/CMakeFiles/parfft_core.dir/pack.cpp.o" "gcc" "src/core/CMakeFiles/parfft_core.dir/pack.cpp.o.d"
  "/root/repo/src/core/plan.cpp" "src/core/CMakeFiles/parfft_core.dir/plan.cpp.o" "gcc" "src/core/CMakeFiles/parfft_core.dir/plan.cpp.o.d"
  "/root/repo/src/core/real_plan.cpp" "src/core/CMakeFiles/parfft_core.dir/real_plan.cpp.o" "gcc" "src/core/CMakeFiles/parfft_core.dir/real_plan.cpp.o.d"
  "/root/repo/src/core/reshape.cpp" "src/core/CMakeFiles/parfft_core.dir/reshape.cpp.o" "gcc" "src/core/CMakeFiles/parfft_core.dir/reshape.cpp.o.d"
  "/root/repo/src/core/simulate.cpp" "src/core/CMakeFiles/parfft_core.dir/simulate.cpp.o" "gcc" "src/core/CMakeFiles/parfft_core.dir/simulate.cpp.o.d"
  "/root/repo/src/core/spectral.cpp" "src/core/CMakeFiles/parfft_core.dir/spectral.cpp.o" "gcc" "src/core/CMakeFiles/parfft_core.dir/spectral.cpp.o.d"
  "/root/repo/src/core/stages.cpp" "src/core/CMakeFiles/parfft_core.dir/stages.cpp.o" "gcc" "src/core/CMakeFiles/parfft_core.dir/stages.cpp.o.d"
  "/root/repo/src/core/trace.cpp" "src/core/CMakeFiles/parfft_core.dir/trace.cpp.o" "gcc" "src/core/CMakeFiles/parfft_core.dir/trace.cpp.o.d"
  "/root/repo/src/core/tune.cpp" "src/core/CMakeFiles/parfft_core.dir/tune.cpp.o" "gcc" "src/core/CMakeFiles/parfft_core.dir/tune.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/parfft_common.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/parfft_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/parfft_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/parfft_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/simmpi/CMakeFiles/parfft_simmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/parfft_model.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
