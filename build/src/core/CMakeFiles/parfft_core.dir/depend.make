# Empty dependencies file for parfft_core.
# This may be replaced when dependencies are built.
