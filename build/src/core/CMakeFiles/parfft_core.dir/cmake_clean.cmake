file(REMOVE_RECURSE
  "CMakeFiles/parfft_core.dir/box.cpp.o"
  "CMakeFiles/parfft_core.dir/box.cpp.o.d"
  "CMakeFiles/parfft_core.dir/fft3d.cpp.o"
  "CMakeFiles/parfft_core.dir/fft3d.cpp.o.d"
  "CMakeFiles/parfft_core.dir/grids.cpp.o"
  "CMakeFiles/parfft_core.dir/grids.cpp.o.d"
  "CMakeFiles/parfft_core.dir/pack.cpp.o"
  "CMakeFiles/parfft_core.dir/pack.cpp.o.d"
  "CMakeFiles/parfft_core.dir/plan.cpp.o"
  "CMakeFiles/parfft_core.dir/plan.cpp.o.d"
  "CMakeFiles/parfft_core.dir/real_plan.cpp.o"
  "CMakeFiles/parfft_core.dir/real_plan.cpp.o.d"
  "CMakeFiles/parfft_core.dir/reshape.cpp.o"
  "CMakeFiles/parfft_core.dir/reshape.cpp.o.d"
  "CMakeFiles/parfft_core.dir/simulate.cpp.o"
  "CMakeFiles/parfft_core.dir/simulate.cpp.o.d"
  "CMakeFiles/parfft_core.dir/spectral.cpp.o"
  "CMakeFiles/parfft_core.dir/spectral.cpp.o.d"
  "CMakeFiles/parfft_core.dir/stages.cpp.o"
  "CMakeFiles/parfft_core.dir/stages.cpp.o.d"
  "CMakeFiles/parfft_core.dir/trace.cpp.o"
  "CMakeFiles/parfft_core.dir/trace.cpp.o.d"
  "CMakeFiles/parfft_core.dir/tune.cpp.o"
  "CMakeFiles/parfft_core.dir/tune.cpp.o.d"
  "libparfft_core.a"
  "libparfft_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parfft_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
