file(REMOVE_RECURSE
  "libparfft_core.a"
)
