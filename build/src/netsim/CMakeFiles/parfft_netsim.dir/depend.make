# Empty dependencies file for parfft_netsim.
# This may be replaced when dependencies are built.
