file(REMOVE_RECURSE
  "CMakeFiles/parfft_netsim.dir/collectives.cpp.o"
  "CMakeFiles/parfft_netsim.dir/collectives.cpp.o.d"
  "CMakeFiles/parfft_netsim.dir/flowsim.cpp.o"
  "CMakeFiles/parfft_netsim.dir/flowsim.cpp.o.d"
  "CMakeFiles/parfft_netsim.dir/machine.cpp.o"
  "CMakeFiles/parfft_netsim.dir/machine.cpp.o.d"
  "libparfft_netsim.a"
  "libparfft_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parfft_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
