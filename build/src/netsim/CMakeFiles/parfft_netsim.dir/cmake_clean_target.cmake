file(REMOVE_RECURSE
  "libparfft_netsim.a"
)
