# Empty compiler generated dependencies file for parfft_model.
# This may be replaced when dependencies are built.
