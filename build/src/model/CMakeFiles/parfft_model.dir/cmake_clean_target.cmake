file(REMOVE_RECURSE
  "libparfft_model.a"
)
