file(REMOVE_RECURSE
  "CMakeFiles/parfft_model.dir/bandwidth.cpp.o"
  "CMakeFiles/parfft_model.dir/bandwidth.cpp.o.d"
  "libparfft_model.a"
  "libparfft_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parfft_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
