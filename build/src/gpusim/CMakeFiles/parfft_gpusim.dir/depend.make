# Empty dependencies file for parfft_gpusim.
# This may be replaced when dependencies are built.
