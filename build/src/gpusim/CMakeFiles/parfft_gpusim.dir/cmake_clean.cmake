file(REMOVE_RECURSE
  "CMakeFiles/parfft_gpusim.dir/device.cpp.o"
  "CMakeFiles/parfft_gpusim.dir/device.cpp.o.d"
  "libparfft_gpusim.a"
  "libparfft_gpusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parfft_gpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
