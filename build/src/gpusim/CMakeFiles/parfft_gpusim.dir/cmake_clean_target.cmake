file(REMOVE_RECURSE
  "libparfft_gpusim.a"
)
