# Empty compiler generated dependencies file for fig04_avg_bandwidth.
# This may be replaced when dependencies are built.
