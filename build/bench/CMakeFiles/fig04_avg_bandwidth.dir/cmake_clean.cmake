file(REMOVE_RECURSE
  "CMakeFiles/fig04_avg_bandwidth.dir/fig04_avg_bandwidth.cpp.o"
  "CMakeFiles/fig04_avg_bandwidth.dir/fig04_avg_bandwidth.cpp.o.d"
  "fig04_avg_bandwidth"
  "fig04_avg_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_avg_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
