file(REMOVE_RECURSE
  "CMakeFiles/fig13_batched.dir/fig13_batched.cpp.o"
  "CMakeFiles/fig13_batched.dir/fig13_batched.cpp.o.d"
  "fig13_batched"
  "fig13_batched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_batched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
