# Empty dependencies file for fig13_batched.
# This may be replaced when dependencies are built.
