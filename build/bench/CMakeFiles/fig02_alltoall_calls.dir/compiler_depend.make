# Empty compiler generated dependencies file for fig02_alltoall_calls.
# This may be replaced when dependencies are built.
