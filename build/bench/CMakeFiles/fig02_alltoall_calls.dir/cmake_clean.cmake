file(REMOVE_RECURSE
  "CMakeFiles/fig02_alltoall_calls.dir/fig02_alltoall_calls.cpp.o"
  "CMakeFiles/fig02_alltoall_calls.dir/fig02_alltoall_calls.cpp.o.d"
  "fig02_alltoall_calls"
  "fig02_alltoall_calls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_alltoall_calls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
