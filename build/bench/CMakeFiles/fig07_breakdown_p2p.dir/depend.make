# Empty dependencies file for fig07_breakdown_p2p.
# This may be replaced when dependencies are built.
