file(REMOVE_RECURSE
  "CMakeFiles/fig07_breakdown_p2p.dir/fig07_breakdown_p2p.cpp.o"
  "CMakeFiles/fig07_breakdown_p2p.dir/fig07_breakdown_p2p.cpp.o.d"
  "fig07_breakdown_p2p"
  "fig07_breakdown_p2p.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_breakdown_p2p.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
