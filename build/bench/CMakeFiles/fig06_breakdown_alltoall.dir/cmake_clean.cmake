file(REMOVE_RECURSE
  "CMakeFiles/fig06_breakdown_alltoall.dir/fig06_breakdown_alltoall.cpp.o"
  "CMakeFiles/fig06_breakdown_alltoall.dir/fig06_breakdown_alltoall.cpp.o.d"
  "fig06_breakdown_alltoall"
  "fig06_breakdown_alltoall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_breakdown_alltoall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
