file(REMOVE_RECURSE
  "CMakeFiles/micro_localfft.dir/micro_localfft.cpp.o"
  "CMakeFiles/micro_localfft.dir/micro_localfft.cpp.o.d"
  "micro_localfft"
  "micro_localfft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_localfft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
