# Empty compiler generated dependencies file for micro_localfft.
# This may be replaced when dependencies are built.
