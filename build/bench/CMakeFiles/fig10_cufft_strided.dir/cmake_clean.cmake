file(REMOVE_RECURSE
  "CMakeFiles/fig10_cufft_strided.dir/fig10_cufft_strided.cpp.o"
  "CMakeFiles/fig10_cufft_strided.dir/fig10_cufft_strided.cpp.o.d"
  "fig10_cufft_strided"
  "fig10_cufft_strided.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_cufft_strided.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
