# Empty dependencies file for fig10_cufft_strided.
# This may be replaced when dependencies are built.
