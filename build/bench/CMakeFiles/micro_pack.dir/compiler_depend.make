# Empty compiler generated dependencies file for micro_pack.
# This may be replaced when dependencies are built.
