file(REMOVE_RECURSE
  "CMakeFiles/table3_grid_sequence.dir/table3_grid_sequence.cpp.o"
  "CMakeFiles/table3_grid_sequence.dir/table3_grid_sequence.cpp.o.d"
  "table3_grid_sequence"
  "table3_grid_sequence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_grid_sequence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
