# Empty compiler generated dependencies file for table3_grid_sequence.
# This may be replaced when dependencies are built.
