# Empty dependencies file for phase_diagram.
# This may be replaced when dependencies are built.
