file(REMOVE_RECURSE
  "CMakeFiles/phase_diagram.dir/phase_diagram.cpp.o"
  "CMakeFiles/phase_diagram.dir/phase_diagram.cpp.o.d"
  "phase_diagram"
  "phase_diagram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phase_diagram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
