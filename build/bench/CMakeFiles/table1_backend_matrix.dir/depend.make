# Empty dependencies file for table1_backend_matrix.
# This may be replaced when dependencies are built.
