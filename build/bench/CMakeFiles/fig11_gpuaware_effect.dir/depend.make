# Empty dependencies file for fig11_gpuaware_effect.
# This may be replaced when dependencies are built.
