file(REMOVE_RECURSE
  "CMakeFiles/fig11_gpuaware_effect.dir/fig11_gpuaware_effect.cpp.o"
  "CMakeFiles/fig11_gpuaware_effect.dir/fig11_gpuaware_effect.cpp.o.d"
  "fig11_gpuaware_effect"
  "fig11_gpuaware_effect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_gpuaware_effect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
