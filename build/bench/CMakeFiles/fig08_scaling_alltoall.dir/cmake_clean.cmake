file(REMOVE_RECURSE
  "CMakeFiles/fig08_scaling_alltoall.dir/fig08_scaling_alltoall.cpp.o"
  "CMakeFiles/fig08_scaling_alltoall.dir/fig08_scaling_alltoall.cpp.o.d"
  "fig08_scaling_alltoall"
  "fig08_scaling_alltoall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_scaling_alltoall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
