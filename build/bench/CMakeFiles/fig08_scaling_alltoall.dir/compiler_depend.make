# Empty compiler generated dependencies file for fig08_scaling_alltoall.
# This may be replaced when dependencies are built.
