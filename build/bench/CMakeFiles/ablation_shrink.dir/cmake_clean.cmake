file(REMOVE_RECURSE
  "CMakeFiles/ablation_shrink.dir/ablation_shrink.cpp.o"
  "CMakeFiles/ablation_shrink.dir/ablation_shrink.cpp.o.d"
  "ablation_shrink"
  "ablation_shrink.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_shrink.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
