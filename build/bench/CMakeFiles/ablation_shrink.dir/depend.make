# Empty dependencies file for ablation_shrink.
# This may be replaced when dependencies are built.
