# Empty dependencies file for fig05_best_regions.
# This may be replaced when dependencies are built.
