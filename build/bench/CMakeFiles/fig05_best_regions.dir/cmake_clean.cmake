file(REMOVE_RECURSE
  "CMakeFiles/fig05_best_regions.dir/fig05_best_regions.cpp.o"
  "CMakeFiles/fig05_best_regions.dir/fig05_best_regions.cpp.o.d"
  "fig05_best_regions"
  "fig05_best_regions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_best_regions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
