file(REMOVE_RECURSE
  "CMakeFiles/fig03_p2p_calls.dir/fig03_p2p_calls.cpp.o"
  "CMakeFiles/fig03_p2p_calls.dir/fig03_p2p_calls.cpp.o.d"
  "fig03_p2p_calls"
  "fig03_p2p_calls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_p2p_calls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
