# Empty compiler generated dependencies file for fig03_p2p_calls.
# This may be replaced when dependencies are built.
