# Empty compiler generated dependencies file for fig09_scaling_p2p.
# This may be replaced when dependencies are built.
