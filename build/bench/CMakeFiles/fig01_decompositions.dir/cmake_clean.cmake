file(REMOVE_RECURSE
  "CMakeFiles/fig01_decompositions.dir/fig01_decompositions.cpp.o"
  "CMakeFiles/fig01_decompositions.dir/fig01_decompositions.cpp.o.d"
  "fig01_decompositions"
  "fig01_decompositions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_decompositions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
