# Empty dependencies file for fig01_decompositions.
# This may be replaced when dependencies are built.
