file(REMOVE_RECURSE
  "CMakeFiles/fig12_lammps_kspace.dir/fig12_lammps_kspace.cpp.o"
  "CMakeFiles/fig12_lammps_kspace.dir/fig12_lammps_kspace.cpp.o.d"
  "fig12_lammps_kspace"
  "fig12_lammps_kspace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_lammps_kspace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
