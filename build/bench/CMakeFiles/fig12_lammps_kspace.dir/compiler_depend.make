# Empty compiler generated dependencies file for fig12_lammps_kspace.
# This may be replaced when dependencies are built.
