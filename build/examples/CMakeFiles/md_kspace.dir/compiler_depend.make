# Empty compiler generated dependencies file for md_kspace.
# This may be replaced when dependencies are built.
