file(REMOVE_RECURSE
  "CMakeFiles/md_kspace.dir/md_kspace.cpp.o"
  "CMakeFiles/md_kspace.dir/md_kspace.cpp.o.d"
  "md_kspace"
  "md_kspace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/md_kspace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
