# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;10;parfft_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_poisson "/root/repo/build/examples/poisson")
set_tests_properties(example_poisson PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;11;parfft_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_md_kspace "/root/repo/build/examples/md_kspace")
set_tests_properties(example_md_kspace PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;12;parfft_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_tuning_advisor "/root/repo/build/examples/tuning_advisor")
set_tests_properties(example_tuning_advisor PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;13;parfft_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_spectrum "/root/repo/build/examples/spectrum")
set_tests_properties(example_spectrum PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;14;parfft_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_heat_equation "/root/repo/build/examples/heat_equation")
set_tests_properties(example_heat_equation PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;15;parfft_add_example;/root/repo/examples/CMakeLists.txt;0;")
