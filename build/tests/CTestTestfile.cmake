# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_fft1d[1]_include.cmake")
include("/root/repo/build/tests/test_fft_nd[1]_include.cmake")
include("/root/repo/build/tests/test_fft_real[1]_include.cmake")
include("/root/repo/build/tests/test_fft_properties[1]_include.cmake")
include("/root/repo/build/tests/test_netsim[1]_include.cmake")
include("/root/repo/build/tests/test_gpusim[1]_include.cmake")
include("/root/repo/build/tests/test_simmpi[1]_include.cmake")
include("/root/repo/build/tests/test_box[1]_include.cmake")
include("/root/repo/build/tests/test_reshape[1]_include.cmake")
include("/root/repo/build/tests/test_model[1]_include.cmake")
include("/root/repo/build/tests/test_stages[1]_include.cmake")
include("/root/repo/build/tests/test_distfft[1]_include.cmake")
include("/root/repo/build/tests/test_simulate[1]_include.cmake")
include("/root/repo/build/tests/test_pppm[1]_include.cmake")
include("/root/repo/build/tests/test_realplan[1]_include.cmake")
include("/root/repo/build/tests/test_tune[1]_include.cmake")
include("/root/repo/build/tests/test_stress[1]_include.cmake")
include("/root/repo/build/tests/test_fft3d_api[1]_include.cmake")
include("/root/repo/build/tests/test_spectral[1]_include.cmake")
