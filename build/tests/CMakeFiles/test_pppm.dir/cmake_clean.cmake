file(REMOVE_RECURSE
  "CMakeFiles/test_pppm.dir/test_pppm.cpp.o"
  "CMakeFiles/test_pppm.dir/test_pppm.cpp.o.d"
  "test_pppm"
  "test_pppm.pdb"
  "test_pppm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pppm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
