# Empty dependencies file for test_pppm.
# This may be replaced when dependencies are built.
