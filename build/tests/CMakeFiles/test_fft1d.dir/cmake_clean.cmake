file(REMOVE_RECURSE
  "CMakeFiles/test_fft1d.dir/test_fft1d.cpp.o"
  "CMakeFiles/test_fft1d.dir/test_fft1d.cpp.o.d"
  "test_fft1d"
  "test_fft1d.pdb"
  "test_fft1d[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fft1d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
