file(REMOVE_RECURSE
  "CMakeFiles/test_distfft.dir/test_distfft.cpp.o"
  "CMakeFiles/test_distfft.dir/test_distfft.cpp.o.d"
  "test_distfft"
  "test_distfft.pdb"
  "test_distfft[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_distfft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
