# Empty compiler generated dependencies file for test_distfft.
# This may be replaced when dependencies are built.
