file(REMOVE_RECURSE
  "CMakeFiles/test_realplan.dir/test_realplan.cpp.o"
  "CMakeFiles/test_realplan.dir/test_realplan.cpp.o.d"
  "test_realplan"
  "test_realplan.pdb"
  "test_realplan[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_realplan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
