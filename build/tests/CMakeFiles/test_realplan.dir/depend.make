# Empty dependencies file for test_realplan.
# This may be replaced when dependencies are built.
