file(REMOVE_RECURSE
  "CMakeFiles/test_fft3d_api.dir/test_fft3d_api.cpp.o"
  "CMakeFiles/test_fft3d_api.dir/test_fft3d_api.cpp.o.d"
  "test_fft3d_api"
  "test_fft3d_api.pdb"
  "test_fft3d_api[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fft3d_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
