# Empty compiler generated dependencies file for test_fft3d_api.
# This may be replaced when dependencies are built.
