file(REMOVE_RECURSE
  "CMakeFiles/test_stages.dir/test_stages.cpp.o"
  "CMakeFiles/test_stages.dir/test_stages.cpp.o.d"
  "test_stages"
  "test_stages.pdb"
  "test_stages[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
