# Empty dependencies file for test_reshape.
# This may be replaced when dependencies are built.
