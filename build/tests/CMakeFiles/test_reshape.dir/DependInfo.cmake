
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_reshape.cpp" "tests/CMakeFiles/test_reshape.dir/test_reshape.cpp.o" "gcc" "tests/CMakeFiles/test_reshape.dir/test_reshape.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/parfft_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/parfft_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/simmpi/CMakeFiles/parfft_simmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/parfft_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/parfft_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/parfft_model.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/parfft_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
