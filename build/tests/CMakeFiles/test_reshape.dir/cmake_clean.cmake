file(REMOVE_RECURSE
  "CMakeFiles/test_reshape.dir/test_reshape.cpp.o"
  "CMakeFiles/test_reshape.dir/test_reshape.cpp.o.d"
  "test_reshape"
  "test_reshape.pdb"
  "test_reshape[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reshape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
