file(REMOVE_RECURSE
  "CMakeFiles/test_fft_properties.dir/test_fft_properties.cpp.o"
  "CMakeFiles/test_fft_properties.dir/test_fft_properties.cpp.o.d"
  "test_fft_properties"
  "test_fft_properties.pdb"
  "test_fft_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fft_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
