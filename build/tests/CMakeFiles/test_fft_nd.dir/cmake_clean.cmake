file(REMOVE_RECURSE
  "CMakeFiles/test_fft_nd.dir/test_fft_nd.cpp.o"
  "CMakeFiles/test_fft_nd.dir/test_fft_nd.cpp.o.d"
  "test_fft_nd"
  "test_fft_nd.pdb"
  "test_fft_nd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fft_nd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
