# Empty dependencies file for test_fft_nd.
# This may be replaced when dependencies are built.
