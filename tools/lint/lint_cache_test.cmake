# ctest driver for parfft_lint's incremental cache (test lint_cache).
#
# Runs the linter twice over src/ against a fresh cache file and checks
# the contract the lint_all consolidation rests on:
#   1. both runs exit 0 (the tree is clean),
#   2. the findings (full stderr minus the summary line) are
#      byte-identical across runs, and
#   3. the first run analysed every file while the second analysed none
#      (served entirely from the content-hash cache).
#
# Variables: LINT (linter binary), SRC (repo root), CACHE (cache path).

file(REMOVE "${CACHE}")

set(ARGS
    --layers=${SRC}/tools/lint/layers.def
    --counters=${SRC}/tools/lint/accounting.def
    --cache=${CACHE}
    ${SRC}/src)

execute_process(COMMAND ${LINT} ${ARGS}
                RESULT_VARIABLE r1 ERROR_VARIABLE e1 OUTPUT_VARIABLE o1)
if(NOT r1 EQUAL 0)
  message(FATAL_ERROR "first lint run failed (exit ${r1}):\n${e1}")
endif()

execute_process(COMMAND ${LINT} ${ARGS}
                RESULT_VARIABLE r2 ERROR_VARIABLE e2 OUTPUT_VARIABLE o2)
if(NOT r2 EQUAL 0)
  message(FATAL_ERROR "second lint run failed (exit ${r2}):\n${e2}")
endif()

# Strip the "parfft_lint: ... analysed N file(s), M cached" summary line
# (the only line allowed to differ) and compare what remains.
string(REGEX REPLACE "parfft_lint: [^\n]*\n?" "" f1 "${e1}")
string(REGEX REPLACE "parfft_lint: [^\n]*\n?" "" f2 "${e2}")
if(NOT f1 STREQUAL f2)
  message(FATAL_ERROR
          "cached run changed the findings:\n--- run 1 ---\n${f1}\n"
          "--- run 2 ---\n${f2}")
endif()

if(e1 MATCHES "analysed 0 file")
  message(FATAL_ERROR "first run unexpectedly hit a warm cache:\n${e1}")
endif()
if(NOT e2 MATCHES "analysed 0 file")
  message(FATAL_ERROR
          "second run re-analysed files instead of using the cache:\n${e2}")
endif()
