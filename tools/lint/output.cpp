/// \file output.cpp
/// Deterministic ordering, baseline suppressions and the SARIF 2.1.0
/// writer. Findings are sorted by (file, line, rule, message) before any
/// output, so the report is byte-stable regardless of filesystem
/// traversal order or which files came from the cache.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "lint.hpp"

namespace lint {

void sort_findings(std::vector<Finding>& findings) {
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              if (a.rule != b.rule) return a.rule < b.rule;
              return a.message < b.message;
            });
}

std::string rel_path(const std::string& path) {
  // From the first src/bench/tests/tools/examples component on: stable
  // across checkout locations, which is what baselines and SARIF need.
  static const std::vector<std::string> kTops = {"src", "bench", "tests",
                                                 "tools", "examples"};
  std::size_t comp = 0;
  while (comp != std::string::npos) {
    const std::size_t end = path.find('/', comp);
    const std::string c =
        path.substr(comp, end == std::string::npos ? std::string::npos
                                                   : end - comp);
    for (const std::string& top : kTops)
      if (c == top) return path.substr(comp);
    if (end == std::string::npos) break;
    comp = end + 1;
  }
  return path;
}

bool load_baseline(const std::string& path, Baseline& b, std::string& err) {
  std::ifstream in(path);
  if (!in) {
    err = "cannot read baseline " + path;
    return false;
  }
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    // Trim trailing whitespace so a comment-only or blank line is skipped.
    while (!line.empty() && (line.back() == ' ' || line.back() == '\t' ||
                             line.back() == '\r'))
      line.pop_back();
    if (line.empty()) continue;
    b.keys.insert(line);
  }
  b.loaded = true;
  return true;
}

std::size_t apply_baseline(std::vector<Finding>& findings, const Baseline& b,
                           std::vector<std::string>& stale) {
  if (!b.loaded) return 0;
  std::set<std::string> used;
  std::vector<Finding> kept;
  kept.reserve(findings.size());
  std::size_t suppressed = 0;
  for (Finding& v : findings) {
    const std::string key = v.rule + "\t" + rel_path(v.file) + "\t" +
                            std::to_string(v.line);
    if (b.keys.count(key)) {
      used.insert(key);
      ++suppressed;
    } else {
      kept.push_back(std::move(v));
    }
  }
  findings = std::move(kept);
  for (const std::string& key : b.keys)
    if (!used.count(key)) stale.push_back(key);
  return suppressed;
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

bool write_sarif(const std::string& path,
                 const std::vector<Finding>& findings) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << "{\n"
         "  \"$schema\": "
         "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
         "  \"version\": \"2.1.0\",\n"
         "  \"runs\": [\n"
         "    {\n"
         "      \"tool\": {\n"
         "        \"driver\": {\n"
         "          \"name\": \"parfft_lint\",\n"
         "          \"informationUri\": "
         "\"docs/static-analysis.md\",\n"
         "          \"rules\": [\n";
  const std::vector<Rule>& rules = registry();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    out << "            {\"id\": \"" << rules[i].name
        << "\", \"shortDescription\": {\"text\": \""
        << json_escape(rules[i].summary) << "\"}}"
        << (i + 1 < rules.size() ? "," : "") << '\n';
  }
  out << "          ]\n"
         "        }\n"
         "      },\n"
         "      \"results\": [\n";
  // Rule index for SARIF's ruleIndex cross-reference.
  std::map<std::string, std::size_t> index;
  for (std::size_t i = 0; i < rules.size(); ++i) index[rules[i].name] = i;
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& v = findings[i];
    out << "        {\"ruleId\": \"" << v.rule << "\", \"ruleIndex\": "
        << (index.count(v.rule) ? index[v.rule] : 0)
        << ", \"level\": \"error\", \"message\": {\"text\": \""
        << json_escape(v.message)
        << "\"}, \"locations\": [{\"physicalLocation\": "
           "{\"artifactLocation\": {\"uri\": \""
        << json_escape(rel_path(v.file))
        << "\"}, \"region\": {\"startLine\": " << v.line << "}}}]}"
        << (i + 1 < findings.size() ? "," : "") << '\n';
  }
  out << "      ]\n"
         "    }\n"
         "  ]\n"
         "}\n";
  return static_cast<bool>(out);
}

}  // namespace lint
