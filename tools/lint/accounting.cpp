/// \file accounting.cpp
/// The cross-TU accounting-discipline pass. The conservation identities
/// `ServeReport::verify()` / `ClusterReport::verify()` /
/// `PlanCache::check_invariants()` enforce at runtime (completed +
/// failed + cancelled == offered, hits + misses == lookups, the hedge
/// ledger, ...) only hold because every counter is mutated from one
/// accessor file per type. This pass makes that discipline static:
///
///   1. accounting.def names each counter-bearing type, the header its
///      fields live in, and the sanctioned writer files;
///   2. the fields are extracted from the header itself (arithmetic data
///      members of the struct/class), so the index tracks the code and
///      a new counter is covered the moment it is declared;
///   3. every TU in scope is scanned for direct writes (=, +=, -=, ++,
///      --) to an indexed field; a write outside the type's sanctioned
///      writers is a finding.
///
/// Struct-style report fields (ServeReport.offered, ...) are matched as
/// member accesses (`x.offered = ...`); private counters following the
/// trailing-underscore convention (PlanCache::hits_) are also matched as
/// bare writes inside member functions. Bare writes to non-underscore
/// names are ignored -- `completed` is far too common a local-variable
/// name to index globally.

#include <filesystem>
#include <fstream>
#include <sstream>

#include "lint.hpp"

namespace lint {
namespace {

namespace fs = std::filesystem;

const std::vector<std::string> kArithmeticTypes = {
    "std::uint64_t", "std::uint32_t", "std::uint16_t", "std::uint8_t",
    "std::int64_t",  "std::int32_t",  "std::size_t",   "std::ptrdiff_t",
    "uint64_t",      "int64_t",       "size_t",        "int",
    "long",          "unsigned",      "double",        "float",
    "bool"};

/// Extracts the arithmetic data members of `type` from the stripped
/// header text: lines whose brace depth is 1 inside the type's body and
/// that declare one or more members of an arithmetic type. Function
/// declarations (declarator followed by '(') are skipped.
bool extract_fields(const FileText& header, const std::string& type,
                    std::set<std::string>& fields, std::string& err) {
  // Locate `struct <type>` / `class <type>` followed by '{' (a ';'
  // first means a forward declaration; keep looking).
  std::size_t body_line = 0, body_col = 0;
  bool found = false;
  for (std::size_t ln = 0; ln < header.code.size() && !found; ++ln) {
    const std::string& s = header.code[ln];
    for (const char* kw : {"struct", "class"}) {
      std::size_t p = find_word(s, kw);
      if (p == std::string::npos) continue;
      std::size_t q = find_word(s, type, p);
      if (q == std::string::npos) continue;
      // Scan forward (across lines) for '{' before any ';'.
      std::size_t l = ln, c = q + type.size();
      for (; l < header.code.size() && l < ln + 4; ++l, c = 0) {
        const std::string& t = header.code[l];
        bool stop = false;
        for (; c < t.size(); ++c) {
          if (t[c] == '{') {
            body_line = l;
            body_col = c + 1;
            found = true;
            stop = true;
            break;
          }
          if (t[c] == ';') {
            stop = true;  // forward declaration
            break;
          }
        }
        if (stop) break;
      }
      if (found) break;
    }
  }
  if (!found) {
    err = "type '" + type + "' not found in " + header.path;
    return false;
  }
  // Walk the body tracking depth; examine lines that *start* at depth 1
  // (directly inside the type, outside nested classes/method bodies).
  int depth = 1;
  for (std::size_t ln = body_line; ln < header.code.size() && depth > 0;
       ++ln) {
    const std::string& s = header.code[ln];
    std::size_t col = ln == body_line ? body_col : 0;
    const int depth_at_start = depth;
    std::size_t stmt_end = s.size();
    for (std::size_t i = col; i < s.size(); ++i) {
      if (s[i] == '{') ++depth;
      if (s[i] == '}' && --depth == 0) {
        stmt_end = i;
        break;
      }
    }
    if (depth_at_start != 1) continue;
    std::string t = s.substr(col, stmt_end - col);
    // Trim and match a leading arithmetic type token.
    const std::size_t b = t.find_first_not_of(' ');
    if (b == std::string::npos) continue;
    t = t.substr(b);
    if (t.rfind("static", 0) == 0 || t.rfind("constexpr", 0) == 0) continue;
    std::string matched;
    for (const std::string& ty : kArithmeticTypes) {
      if (t.rfind(ty, 0) == 0 && t.size() > ty.size() &&
          !ident_char(t[ty.size()])) {
        matched = ty;
        break;
      }
    }
    if (matched.empty()) continue;
    // Parse comma-separated declarators up to ';'.
    std::string rest = t.substr(matched.size());
    const std::size_t semi = rest.find(';');
    if (semi == std::string::npos) continue;  // no multi-line declarations
    rest = rest.substr(0, semi);
    std::stringstream decls(rest);
    std::string d;
    bool function_line = false;
    std::vector<std::string> names;
    while (std::getline(decls, d, ',')) {
      std::size_t i = d.find_first_not_of(' ');
      if (i == std::string::npos) continue;
      std::size_t e = i;
      while (e < d.size() && ident_char(d[e])) ++e;
      if (e == i) continue;
      std::size_t after = e;
      while (after < d.size() && d[after] == ' ') ++after;
      if (after < d.size() && d[after] == '(') {
        function_line = true;  // a method returning an arithmetic type
        break;
      }
      names.push_back(d.substr(i, e - i));
    }
    if (function_line) continue;
    for (std::string& n : names) fields.insert(std::move(n));
  }
  if (fields.empty()) {
    err = "no arithmetic members extracted for '" + type + "' from " +
          header.path + " (is the accounting.def entry stale?)";
    return false;
  }
  return true;
}

bool sanctioned(const std::string& path, const CounterType& t) {
  for (const std::string& w : t.writers) {
    if (path.size() >= w.size() &&
        path.compare(path.size() - w.size(), w.size(), w) == 0)
      return true;
  }
  return false;
}

/// The identifier ending at `e` (exclusive, spaces already skipped) and
/// whether it is written through a member access (./->).
struct Target {
  std::string name;
  bool member = false;
  std::size_t begin = 0;  ///< index of the identifier's first char
};

Target target_left_of(const std::string& s, std::size_t e) {
  while (e > 0 && s[e - 1] == ' ') --e;
  std::size_t b = e;
  while (b > 0 && ident_char(s[b - 1])) --b;
  Target t;
  t.name = s.substr(b, e - b);
  t.begin = b;
  std::size_t d = b;
  while (d > 0 && s[d - 1] == ' ') --d;
  t.member = (d >= 1 && s[d - 1] == '.') ||
             (d >= 2 && s[d - 2] == '-' && s[d - 1] == '>');
  return t;
}

Target target_right_of(const std::string& s, std::size_t b) {
  while (b < s.size() && s[b] == ' ') ++b;
  // Parse an access chain a.b->c; the final component is the field.
  Target t;
  t.begin = b;
  bool member = false;
  while (b < s.size()) {
    std::size_t e = b;
    while (e < s.size() && ident_char(s[e])) ++e;
    if (e == b) break;
    t.name = s.substr(b, e - b);
    if (e < s.size() && s[e] == '.') {
      member = true;
      b = e + 1;
    } else if (e + 1 < s.size() && s[e] == '-' && s[e + 1] == '>') {
      member = true;
      b = e + 2;
    } else {
      break;
    }
  }
  t.member = member;
  return t;
}

}  // namespace

bool parse_counter_spec(const std::string& path, CounterSpec& spec,
                        std::string& err) {
  std::ifstream in(path);
  if (!in) {
    err = "cannot read accounting spec " + path;
    return false;
  }
  spec.path = path;
  // Header paths in the spec are repo-relative; the spec itself lives at
  // <repo>/tools/lint/accounting.def.
  const fs::path root =
      fs::absolute(fs::path(path)).parent_path().parent_path().parent_path();
  std::string line;
  std::size_t ln = 0;
  std::set<std::string> skipped;
  while (std::getline(in, line)) {
    ++ln;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::stringstream ss(line);
    std::string kw;
    if (!(ss >> kw)) continue;
    const std::string at = path + ":" + std::to_string(ln) + ": ";
    if (kw == "type") {
      CounterType t;
      if (!(ss >> t.name >> t.header)) {
        err = at + "expected 'type <Name> <header>'";
        return false;
      }
      const fs::path hp = root / t.header;
      std::ifstream hin(hp);
      if (!hin) {
        err = at + "cannot read header " + hp.generic_string();
        return false;
      }
      std::stringstream buf;
      buf << hin.rdbuf();
      FileText htext;
      htext.path = fs::path(hp).generic_string();
      build_file_text(htext, buf.str());
      if (!extract_fields(htext, t.name, t.fields, err)) {
        err = at + err;
        return false;
      }
      spec.types.push_back(std::move(t));
    } else if (kw == "writer") {
      if (spec.types.empty()) {
        err = at + "'writer' before any 'type'";
        return false;
      }
      std::string w;
      if (!(ss >> w)) {
        err = at + "expected 'writer <path-suffix>'";
        return false;
      }
      spec.types.back().writers.push_back(w);
    } else if (kw == "skip") {
      // Drop a field from the index (a config knob sharing a struct with
      // counters, say) -- applied to every type after parsing.
      std::string fname;
      while (ss >> fname) skipped.insert(fname);
    } else {
      err = at + "unknown keyword '" + kw +
            "' (expected 'type', 'writer' or 'skip')";
      return false;
    }
  }
  if (spec.types.empty()) {
    err = path + ": no types defined";
    return false;
  }
  for (CounterType& t : spec.types)
    for (const std::string& sfield : skipped) t.fields.erase(sfield);
  for (std::size_t i = 0; i < spec.types.size(); ++i)
    for (const std::string& fname : spec.types[i].fields)
      spec.by_field[fname].push_back(i);
  return true;
}

void check_accounting(const FileText& f, const CounterSpec& spec,
                      std::vector<Finding>& out) {
  if (!f.explicit_file && !path_contains(f.path, "src/")) return;
  auto report = [&](std::size_t ln, const Target& t) {
    if (t.name.empty()) return;
    // Bare writes only match trailing-underscore (private counter)
    // names; struct report fields must be member accesses.
    if (!t.member && t.name.back() != '_') return;
    const auto it = spec.by_field.find(t.name);
    if (it == spec.by_field.end()) return;
    std::string owners;
    std::string writers;
    for (const std::size_t idx : it->second) {
      const CounterType& ct = spec.types[idx];
      if (sanctioned(f.path, ct)) return;
      if (!owners.empty()) owners += "/";
      owners += ct.name;
      for (const std::string& w : ct.writers) {
        if (!writers.empty()) writers += ", ";
        writers += w;
      }
    }
    if (allowed(f, ln + 1, "accounting")) return;
    out.push_back(
        {f.path, ln + 1, "accounting",
         "direct write to " + owners + " counter '" + t.name +
             "' outside its sanctioned accessor file(s) (" + writers +
             "); the verify()/check_invariants() conservation identities "
             "depend on single-point mutation -- route the update through "
             "the owning layer or annotate "
             "'parfft-lint: allow(accounting)'"});
  };

  for (std::size_t ln = 0; ln < f.code.size(); ++ln) {
    const std::string& s = f.code[ln];
    for (std::size_t i = 0; i < s.size(); ++i) {
      if (s[i] == '=') {
        if (i + 1 < s.size() && s[i + 1] == '=') {
          ++i;  // == comparison
          continue;
        }
        if (i > 0 && std::string("=!<>").find(s[i - 1]) != std::string::npos)
          continue;  // comparison fragment (<=, >=, !=, ==)
        std::size_t e = i;
        if (i > 0 &&
            std::string("+-*/%&|^").find(s[i - 1]) != std::string::npos)
          e = i - 1;  // compound assignment: target sits left of the op
        Target t = target_left_of(s, e);
        // A declaration's initializer (`std::uint64_t hits_ = 0;`) is
        // the field being born, not mutated: a type token precedes it.
        std::size_t d = t.begin;
        while (d > 0 && s[d - 1] == ' ') --d;
        const bool declared = !t.member && d > 0 && ident_char(s[d - 1]);
        if (!declared) report(ln, t);
      } else if (i + 1 < s.size() && (s[i] == '+' || s[i] == '-') &&
                 s[i + 1] == s[i]) {
        report(ln, target_left_of(s, i));       // postfix x++ / x--
        report(ln, target_right_of(s, i + 2));  // prefix ++x / --x
        ++i;
      }
    }
  }
}

}  // namespace lint
