/// \file rules_file.cpp
/// Per-file rule passes. These are the line-level determinism rules the
/// original single-file linter shipped (wall-clock, unordered-iter,
/// float-eq, include-hygiene, span-pairing, alert-transitions), the
/// pointer-key determinism upgrade, and the #include fact extraction the
/// whole-program layering pass consumes. Everything here depends only on
/// one file's text, which is what makes the results cacheable by content
/// hash.

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "lint.hpp"

namespace lint {
namespace {

// ------------------------------------------------------------ wall-clock

void check_wall_clock(const FileText& f, std::vector<Finding>& out) {
  if (path_contains(f.path, "src/common/")) return;  // Rng + units live here
  static const std::vector<std::pair<std::string, std::string>> kTokens = {
      {"system_clock", "wall-clock read (std::chrono::system_clock)"},
      {"steady_clock", "wall-clock read (std::chrono::steady_clock)"},
      {"high_resolution_clock", "wall-clock read"},
      {"gettimeofday", "wall-clock read (gettimeofday)"},
      {"clock_gettime", "wall-clock read (clock_gettime)"},
      {"random_device", "nondeterministic entropy (std::random_device)"},
      {"rand", "C PRNG with hidden global state (rand)"},
      {"srand", "C PRNG with hidden global state (srand)"},
      {"getrandom", "nondeterministic entropy (getrandom)"},
  };
  for (std::size_t ln = 0; ln < f.code.size(); ++ln) {
    const std::string& s = f.code[ln];
    if (allowed(f, ln + 1, "wall-clock")) continue;
    for (const auto& [tok, why] : kTokens) {
      std::size_t p = find_word(s, tok);
      if (p == std::string::npos) continue;
      // rand/srand only count as calls.
      if ((tok == "rand" || tok == "srand")) {
        std::size_t q = p + tok.size();
        while (q < s.size() && s[q] == ' ') ++q;
        if (q >= s.size() || s[q] != '(') continue;
      }
      out.push_back({f.path, ln + 1, "wall-clock",
                     why + "; derive all timing/randomness from the seeded "
                           "virtual clock or parfft::Rng"});
      break;
    }
    // `time(` as a C-library call: the argument must look like time()'s
    // time_t* parameter (nullptr/0/NULL/&x), which distinguishes it from
    // a variable or constructor named `time`.
    for (std::size_t p = find_word(s, "time"); p != std::string::npos;
         p = find_word(s, "time", p + 1)) {
      std::size_t q = p + 4;
      while (q < s.size() && s[q] == ' ') ++q;
      if (q >= s.size() || s[q] != '(') continue;
      const bool member = p >= 1 && (s[p - 1] == '.' ||
                                     (p >= 2 && s[p - 2] == '-' && s[p - 1] == '>'));
      if (member) continue;
      std::size_t a = q + 1;
      while (a < s.size() && s[a] == ' ') ++a;
      const bool timey =
          s.compare(a, 7, "nullptr") == 0 || s.compare(a, 4, "NULL") == 0 ||
          (a < s.size() && s[a] == '&') ||
          (a < s.size() && s[a] == '0' && a + 1 < s.size() && s[a + 1] == ')');
      if (!timey) continue;
      out.push_back({f.path, ln + 1, "wall-clock",
                     "wall-clock read (time()); use virtual time"});
      break;
    }
    // Default-constructed mt19937 seeds from a fixed default but is a
    // smell: every engine must be seeded through parfft::Rng.
    for (std::size_t p = find_word(s, "mt19937"); p != std::string::npos;
         p = find_word(s, "mt19937", p + 1)) {
      std::size_t q = p + 7;
      if (q + 3 <= s.size() && s.compare(q, 3, "_64") == 0) q += 3;
      while (q < s.size() && s[q] == ' ') ++q;
      // Skip an optional variable name.
      while (q < s.size() && ident_char(s[q])) ++q;
      while (q < s.size() && s[q] == ' ') ++q;
      const bool argless =
          q >= s.size() || s[q] == ';' ||
          (s[q] == '(' && q + 1 < s.size() && s[q + 1] == ')') ||
          (s[q] == '{' && q + 1 < s.size() && s[q + 1] == '}');
      if (argless) {
        out.push_back({f.path, ln + 1, "wall-clock",
                       "default-seeded mt19937; seed explicitly via "
                       "parfft::Rng"});
        break;
      }
    }
  }
}

// -------------------------------------------------------- unordered-iter

/// Identifiers declared in this file as std::unordered_map/set.
std::set<std::string> unordered_vars(const FileText& f) {
  std::set<std::string> vars;
  for (const std::string& s : f.code) {
    for (const char* type : {"unordered_map", "unordered_set",
                             "unordered_multimap", "unordered_multiset"}) {
      std::size_t p = find_word(s, type);
      if (p == std::string::npos) continue;
      // Skip the template argument list to find the declared name.
      std::size_t q = p + std::strlen(type);
      if (q < s.size() && s[q] == '<') {
        int depth = 0;
        for (; q < s.size(); ++q) {
          if (s[q] == '<') ++depth;
          if (s[q] == '>' && --depth == 0) {
            ++q;
            break;
          }
        }
      }
      while (q < s.size() && (s[q] == ' ' || s[q] == '&' || s[q] == '*')) ++q;
      std::size_t b = q;
      while (q < s.size() && ident_char(s[q])) ++q;
      if (q > b) vars.insert(s.substr(b, q - b));
    }
  }
  return vars;
}

/// Does the statement starting at (line, col) -- the body of a for loop --
/// look effectful? Scans the balanced braces (or the single statement) for
/// sinks that leak iteration order into results, traces or reports.
bool effectful_body(const FileText& f, std::size_t line, std::size_t col,
                    std::size_t* end_line) {
  static const std::vector<std::string> kSinks = {
      "push_back", "emplace_back", "emplace",  "insert", "append", "add",
      "observe",   "record",       "complete", "sample", "write",  "print",
      "result",    "results",      "trace",    "tracer", "report", "rep",
      "out",       "<<",           "+=",
  };
  int depth = 0;
  bool braced = false;
  std::string body;
  std::size_t ln = line;
  std::size_t i = col;
  for (; ln < f.code.size(); ++ln, i = 0) {
    const std::string& s = f.code[ln];
    for (; i < s.size(); ++i) {
      const char c = s[i];
      if (c == '{') {
        ++depth;
        braced = true;
      } else if (c == '}') {
        --depth;
        if (braced && depth == 0) {
          *end_line = ln;
          goto scan;
        }
      } else if (c == ';' && !braced && depth == 0) {
        *end_line = ln;
        goto scan;
      }
      body += c;
    }
    body += '\n';
  }
  *end_line = f.code.size();
scan:
  for (const std::string& sink : kSinks) {
    if (sink == "<<" || sink == "+=") {
      if (body.find(sink) != std::string::npos) return true;
    } else if (find_word(body, sink) != std::string::npos) {
      return true;
    }
  }
  return false;
}

void check_unordered_iter(const FileText& f, std::vector<Finding>& out) {
  const std::set<std::string> vars = unordered_vars(f);
  for (std::size_t ln = 0; ln < f.code.size(); ++ln) {
    const std::string& s = f.code[ln];
    std::size_t p = find_word(s, "for");
    if (p == std::string::npos) continue;
    std::size_t open = s.find('(', p);
    if (open == std::string::npos) continue;
    // Find the range expression of a range-for (text after ':' inside the
    // for parens) or an iterator loop over `x.begin()`.
    int depth = 0;
    std::size_t close = open;
    for (; close < s.size(); ++close) {
      if (s[close] == '(') ++depth;
      if (s[close] == ')' && --depth == 0) break;
    }
    if (close >= s.size()) close = s.size();
    const std::string head = s.substr(open + 1, close - open - 1);
    bool over_unordered = false;
    const std::size_t colon = head.find(':');
    std::string range =
        colon != std::string::npos ? head.substr(colon + 1) : head;
    if (range.find("unordered_") != std::string::npos) over_unordered = true;
    for (const std::string& v : vars) {
      if (find_word(range, v) != std::string::npos) over_unordered = true;
    }
    if (!over_unordered) continue;
    if (colon == std::string::npos &&
        range.find(".begin") == std::string::npos &&
        range.find(".cbegin") == std::string::npos)
      continue;  // plain for over an index; order is the index order
    std::size_t end_line = ln;
    if (!effectful_body(f, ln, close + 1, &end_line)) continue;
    if (allowed(f, ln + 1, "unordered-iter")) continue;
    out.push_back(
        {f.path, ln + 1, "unordered-iter",
         "iteration over an unordered container feeds results/traces/"
         "reports; unordered order is not deterministic across stdlibs -- "
         "iterate a sorted view or use std::map"});
  }
}

// -------------------------------------------------------------- float-eq

bool float_literal_at(const std::string& s, std::size_t i, bool backwards) {
  // Forward: digits '.' digits [exp]; also ".5". Backwards: scan left.
  if (backwards) {
    // Find the token ending at i (exclusive); it must look like a float.
    std::size_t e = i;
    while (e > 0 && s[e - 1] == ' ') --e;
    std::size_t b = e;
    while (b > 0 && (std::isdigit(static_cast<unsigned char>(s[b - 1])) ||
                     s[b - 1] == '.' || s[b - 1] == 'e' || s[b - 1] == 'E' ||
                     s[b - 1] == 'f' || s[b - 1] == 'F' || s[b - 1] == '+' ||
                     s[b - 1] == '-'))
      --b;
    const std::string tok = s.substr(b, e - b);
    if (b > 0 && ident_char(s[b - 1])) return false;  // identifier tail
    return tok.find('.') != std::string::npos &&
           tok.find_first_of("0123456789") != std::string::npos;
  }
  std::size_t b = i;
  while (b < s.size() && s[b] == ' ') ++b;
  if (b < s.size() && (s[b] == '+' || s[b] == '-')) ++b;
  std::size_t d = b;
  bool dot = false, digit = false;
  while (d < s.size() &&
         (std::isdigit(static_cast<unsigned char>(s[d])) || s[d] == '.')) {
    dot |= s[d] == '.';
    digit |= std::isdigit(static_cast<unsigned char>(s[d])) != 0;
    ++d;
  }
  if (d < s.size() && ident_char(s[d]) && s[d] != 'e' && s[d] != 'E' &&
      s[d] != 'f' && s[d] != 'F')
    return false;  // e.g. 1.5x -- not a literal (cannot happen in valid C++)
  return dot && digit;
}

void check_float_eq(const FileText& f, std::vector<Finding>& out) {
  if (!f.explicit_file && !path_contains(f.path, "src/")) return;
  for (std::size_t ln = 0; ln < f.code.size(); ++ln) {
    const std::string& s = f.code[ln];
    for (std::size_t i = 0; i + 1 < s.size(); ++i) {
      if (!((s[i] == '=' || s[i] == '!') && s[i + 1] == '=')) continue;
      if (i > 0 && (s[i - 1] == '=' || s[i - 1] == '<' || s[i - 1] == '>'))
        continue;  // ===, <=, >= fragments
      if (i + 2 < s.size() && s[i + 2] == '=') continue;
      const bool lhs = i > 0 && float_literal_at(s, i, /*backwards=*/true);
      const bool rhs = float_literal_at(s, i + 2, /*backwards=*/false);
      if (!lhs && !rhs) continue;
      if (allowed(f, ln + 1, "float-eq")) continue;
      out.push_back(
          {f.path, ln + 1, "float-eq",
           "exact ==/!= against a floating-point literal; computed doubles "
           "compare unreliably -- use a tolerance, or annotate "
           "'parfft-lint: allow(float-eq)' if this is an exact sentinel"});
      ++i;
    }
  }
}

// ------------------------------------------------------- include-hygiene

void check_include_hygiene(const FileText& f, std::vector<Finding>& out) {
  if (f.path.size() < 4 || f.path.substr(f.path.size() - 4) != ".hpp") return;
  // token -> acceptable headers (any one suffices).
  static const std::vector<std::pair<std::string, std::vector<std::string>>>
      kNeeds = {
          {"std::vector", {"<vector>"}},
          {"std::string", {"<string>"}},
          {"std::map", {"<map>"}},
          {"std::multimap", {"<map>"}},
          {"std::unordered_map", {"<unordered_map>"}},
          {"std::unordered_set", {"<unordered_set>"}},
          {"std::set", {"<set>"}},
          {"std::list", {"<list>"}},
          {"std::deque", {"<deque>"}},
          {"std::array", {"<array>"}},
          {"std::optional", {"<optional>"}},
          {"std::function", {"<functional>"}},
          {"std::atomic", {"<atomic>"}},
          {"std::mutex", {"<mutex>"}},
          {"std::lock_guard", {"<mutex>"}},
          {"std::unique_lock", {"<mutex>"}},
          {"std::condition_variable", {"<condition_variable>"}},
          {"std::thread", {"<thread>"}},
          {"std::unique_ptr", {"<memory>"}},
          {"std::shared_ptr", {"<memory>"}},
          {"std::pair", {"<utility>"}},
          {"std::uint64_t", {"<cstdint>"}},
          {"std::int64_t", {"<cstdint>"}},
          {"std::uint32_t", {"<cstdint>"}},
          {"std::int32_t", {"<cstdint>"}},
          {"std::uint8_t", {"<cstdint>"}},
          {"std::size_t", {"<cstddef>", "<cstdint>", "<cstdio>", "<cstring>"}},
          {"std::byte", {"<cstddef>"}},
          {"std::complex", {"<complex>"}},
          {"std::ostream", {"<iosfwd>", "<ostream>", "<iostream>"}},
          {"std::istream", {"<iosfwd>", "<istream>", "<iostream>"}},
      };
  std::set<std::string> includes;
  for (const std::string& s : f.raw) {
    std::size_t p = s.find("#include");
    if (p == std::string::npos) continue;
    std::size_t b = s.find_first_of("<\"", p);
    if (b == std::string::npos) continue;
    std::size_t e = s.find_first_of(">\"", b + 1);
    if (e == std::string::npos) continue;
    includes.insert(s.substr(b, e - b + 1));
  }
  for (const auto& [token, headers] : kNeeds) {
    bool have = false;
    for (const std::string& h : headers) have |= includes.count(h) > 0;
    if (have) continue;
    for (std::size_t ln = 0; ln < f.code.size(); ++ln) {
      if (f.code[ln].find(token) == std::string::npos) continue;
      // Word-boundary check on the tail component.
      const std::size_t p = f.code[ln].find(token);
      const std::size_t e = p + token.size();
      if (e < f.code[ln].size() && ident_char(f.code[ln][e])) continue;
      if (allowed(f, ln + 1, "include-hygiene")) continue;
      out.push_back({f.path, ln + 1, "include-hygiene",
                     "uses " + token + " without including " + headers[0] +
                         "; headers must be self-sufficient"});
      break;  // one finding per missing header per file
    }
  }
}

// ---------------------------------------------------------- span-pairing

/// Identifiers declared in this file as (obs::)Tracer variables; the
/// member name `tracer` (RunTrace::tracer) is always a tracer receiver.
std::set<std::string> tracer_vars(const FileText& f) {
  std::set<std::string> vars = {"tracer"};
  for (const std::string& s : f.code) {
    for (std::size_t p = find_word(s, "Tracer"); p != std::string::npos;
         p = find_word(s, "Tracer", p + 1)) {
      std::size_t q = p + 6;
      while (q < s.size() && (s[q] == ' ' || s[q] == '&')) ++q;
      std::size_t b = q;
      while (q < s.size() && ident_char(s[q])) ++q;
      if (q > b) vars.insert(s.substr(b, q - b));
    }
  }
  return vars;
}

void check_span_pairing(const FileText& f, std::vector<Finding>& out) {
  const std::set<std::string> vars = tracer_vars(f);
  // The identifier immediately left of the '.' / '->' before position `p`.
  auto receiver = [](const std::string& s, std::size_t p) -> std::string {
    std::size_t e;
    if (p >= 1 && s[p - 1] == '.') {
      e = p - 1;
    } else if (p >= 2 && s[p - 2] == '-' && s[p - 1] == '>') {
      e = p - 2;
    } else {
      return {};
    }
    std::size_t b = e;
    while (b > 0 && ident_char(s[b - 1])) --b;
    return s.substr(b, e - b);
  };

  struct OpenSpan {
    std::size_t line;  ///< 1-based line of the begin()
    bool allow;        ///< suppressed via the allow mechanism
  };
  std::map<std::string, std::vector<OpenSpan>> open;
  for (std::size_t ln = 0; ln < f.code.size(); ++ln) {
    const std::string& s = f.code[ln];
    // (column, receiver, +1 begin / -1 end) events of this line, in order.
    struct Event {
      std::size_t col;
      std::string recv;
      int delta;
    };
    std::vector<Event> events;
    for (const auto& [tok, delta] :
         {std::pair<const char*, int>{"begin", +1}, {"end", -1}}) {
      const std::size_t len = std::strlen(tok);
      for (std::size_t p = find_word(s, tok); p != std::string::npos;
           p = find_word(s, tok, p + 1)) {
        std::size_t q = p + len;
        while (q < s.size() && s[q] == ' ') ++q;
        if (q >= s.size() || s[q] != '(') continue;
        const std::string r = receiver(s, p);
        if (vars.count(r) == 0) continue;  // container .begin()/.end() etc.
        events.push_back({p, r, delta});
      }
    }
    std::sort(events.begin(), events.end(),
              [](const Event& a, const Event& b) { return a.col < b.col; });
    for (const Event& e : events) {
      std::vector<OpenSpan>& stack = open[e.recv];
      if (e.delta > 0) {
        stack.push_back({ln + 1, allowed(f, ln + 1, "span-pairing")});
      } else if (!stack.empty()) {
        stack.pop_back();
      } else if (!allowed(f, ln + 1, "span-pairing")) {
        out.push_back({f.path, ln + 1, "span-pairing",
                       "tracer end() without an open begin() in this file; "
                       "parent spans must be opened and closed in the same "
                       "scope"});
      }
    }
  }
  for (const auto& [recv, stack] : open) {
    (void)recv;
    for (const OpenSpan& o : stack) {
      if (o.allow) continue;
      out.push_back({f.path, o.line, "span-pairing",
                     "tracer begin() without a matching end() in this file; "
                     "a leaked parent span corrupts span nesting -- close "
                     "it in the same scope or annotate "
                     "'parfft-lint: allow(span-pairing)'"});
    }
  }
}

// ----------------------------------------------------- alert-transitions

/// Survival state (ShardBreaker::state_, BrownoutController::stage_) may
/// only change through set_state()/set_stage(): those fire the
/// on_transition hooks that become ClusterReport::survival_log entries
/// and obs Alert spans (the "no silent transitions" contract in
/// survival.hpp). A raw assignment changes behavior without leaving a
/// trace. Scoped to src/cluster (and explicit file arguments, for the
/// fixture); a declaration with initializer -- the type token directly
/// before the target -- is creation, not transition, and is exempt.
void check_alert_transitions(const FileText& f, std::vector<Finding>& out) {
  if (!f.explicit_file && !path_contains(f.path, "src/cluster")) return;
  for (std::size_t ln = 0; ln < f.code.size(); ++ln) {
    const std::string& s = f.code[ln];
    for (std::size_t i = 0; i < s.size(); ++i) {
      if (s[i] != '=') continue;
      if (i + 1 < s.size() && s[i + 1] == '=') {
        ++i;  // == comparison
        continue;
      }
      if (i > 0 && std::strchr("=!<>+-*/%&|^", s[i - 1]))
        continue;  // compound assignment or comparison fragment
      // The identifier being assigned, immediately left of the '='.
      std::size_t e = i;
      while (e > 0 && s[e - 1] == ' ') --e;
      std::size_t b = e;
      while (b > 0 && ident_char(s[b - 1])) --b;
      const std::string target = s.substr(b, e - b);
      // `BreakerState state_ = ...;` / `int stage_ = 0;`: a type token
      // precedes the target, so this is a declaration's initializer.
      std::size_t d = b;
      while (d > 0 && s[d - 1] == ' ') --d;
      const bool declared = d > 0 && ident_char(s[d - 1]);
      const bool member_write =
          !declared && (target == "state_" || target == "stage_");
      const bool enum_write =
          !declared && s.find("BreakerState::", i) != std::string::npos &&
          find_word(s.substr(0, i), "BreakerState") == std::string::npos;
      if (!member_write && !enum_write) continue;
      if (allowed(f, ln + 1, "alert-transitions")) continue;
      out.push_back(
          {f.path, ln + 1, "alert-transitions",
           "direct write to survival state" +
               (target.empty() ? std::string() : " (" + target + ")") +
               "; breaker/brownout transitions must go through set_state()/"
               "set_stage() so on_transition logs them as survival events "
               "and Alert spans -- or annotate "
               "'parfft-lint: allow(alert-transitions)'"});
    }
  }
}

// ----------------------------------------------------------- pointer-key

/// Reads the first template argument starting just after the '<' at
/// (line, col); template argument lists may span lines. Returns the
/// trimmed argument text ("" when unterminated within the lookahead).
std::string first_template_arg(const FileText& f, std::size_t line,
                               std::size_t col) {
  std::string arg;
  int depth = 1;
  std::size_t ln = line, i = col;
  const std::size_t last = std::min(f.code.size(), line + 6);  // lookahead cap
  for (; ln < last; ++ln, i = 0) {
    const std::string& s = f.code[ln];
    for (; i < s.size(); ++i) {
      const char c = s[i];
      if (c == '<' || c == '(') ++depth;
      if (c == '>' || c == ')') {
        if (--depth == 0) goto done;
      }
      if (c == ',' && depth == 1) goto done;
      arg += c;
    }
    arg += ' ';
  }
  return {};  // unterminated within the lookahead: not a template arg list
done:
  // Trim.
  std::size_t b = arg.find_first_not_of(' ');
  std::size_t e = arg.find_last_not_of(' ');
  if (b == std::string::npos) return {};
  return arg.substr(b, e - b + 1);
}

/// The determinism class the regex-era rules missed: a std::map/set (or
/// unordered_*) keyed by a pointer, a std::hash over a pointer type, or
/// a reinterpret_cast of a pointer to uintptr_t. All three order or hash
/// by allocation address, which varies run to run and across ASLR, so
/// anything ordered output derives from them diverges between otherwise
/// identical seeded runs. Scoped to src/ plus explicit file arguments.
void check_pointer_key(const FileText& f, std::vector<Finding>& out) {
  if (!f.explicit_file && !path_contains(f.path, "src/")) return;
  static const std::vector<std::string> kContainers = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset", "map", "set", "multimap", "multiset"};
  for (std::size_t ln = 0; ln < f.code.size(); ++ln) {
    const std::string& s = f.code[ln];
    for (const std::string& tok : kContainers) {
      for (std::size_t p = find_word(s, tok); p != std::string::npos;
           p = find_word(s, tok, p + 1)) {
        std::size_t q = p + tok.size();
        while (q < s.size() && s[q] == ' ') ++q;
        if (q >= s.size() || s[q] != '<') continue;
        // The short names (map, set, ...) double as variable names and
        // `x < y` comparisons; require namespace qualification for them.
        const bool qualified = p >= 2 && s[p - 1] == ':' && s[p - 2] == ':';
        if (!qualified && tok.rfind("unordered_", 0) != 0) continue;
        const std::string key = first_template_arg(f, ln, q + 1);
        if (key.empty() || key.back() != '*') continue;
        if (allowed(f, ln + 1, "pointer-key")) continue;
        out.push_back(
            {f.path, ln + 1, "pointer-key",
             "std::" + tok + " keyed by a pointer (" + key +
                 "); iteration/hash order follows allocation addresses, "
                 "which differ across runs and ASLR -- key by a stable id, "
                 "or annotate 'parfft-lint: allow(pointer-key)' if the "
                 "order provably never reaches output"});
      }
    }
    for (std::size_t p = find_word(s, "hash"); p != std::string::npos;
         p = find_word(s, "hash", p + 1)) {
      if (!(p >= 2 && s[p - 1] == ':' && s[p - 2] == ':')) continue;
      std::size_t q = p + 4;
      while (q < s.size() && s[q] == ' ') ++q;
      if (q >= s.size() || s[q] != '<') continue;
      const std::string key = first_template_arg(f, ln, q + 1);
      if (key.empty() || key.back() != '*') continue;
      if (allowed(f, ln + 1, "pointer-key")) continue;
      out.push_back({f.path, ln + 1, "pointer-key",
                     "std::hash over a pointer type (" + key +
                         ") hashes the allocation address; hash a stable id "
                         "instead"});
    }
    for (std::size_t p = find_word(s, "reinterpret_cast");
         p != std::string::npos; p = find_word(s, "reinterpret_cast", p + 1)) {
      std::size_t q = p + 16;
      while (q < s.size() && s[q] == ' ') ++q;
      if (q >= s.size() || s[q] != '<') continue;
      const std::string to = first_template_arg(f, ln, q + 1);
      if (to.find("uintptr_t") == std::string::npos &&
          to.find("intptr_t") == std::string::npos)
        continue;
      if (allowed(f, ln + 1, "pointer-key")) continue;
      out.push_back({f.path, ln + 1, "pointer-key",
                     "pointer cast to " + to +
                         " -- address-based hashing/ordering is "
                         "nondeterministic across runs; derive keys from "
                         "stable ids"});
    }
  }
}

// ------------------------------------------------------- include facts

/// Records every quoted #include as a fact for the layering pass. The
/// directive is located in the stripped text (so commented-out includes
/// are ignored) but the path itself is read from the raw line, because
/// stripping blanks string-literal contents.
void collect_includes(const FileText& f, FileReport& rep) {
  for (std::size_t ln = 0; ln < f.code.size(); ++ln) {
    const std::string& code = f.code[ln];
    std::size_t p = code.find("#include");
    if (p == std::string::npos) continue;
    const std::string& raw = f.raw[ln];
    std::size_t b = raw.find('"', p);
    if (b == std::string::npos) continue;  // <system> include
    std::size_t e = raw.find('"', b + 1);
    if (e == std::string::npos) continue;
    rep.includes.push_back({ln + 1, raw.substr(b + 1, e - b - 1),
                            allowed(f, ln + 1, "layering")});
  }
}

}  // namespace

void run_file_rules(const FileText& f, FileReport& rep) {
  check_wall_clock(f, rep.findings);
  check_unordered_iter(f, rep.findings);
  check_float_eq(f, rep.findings);
  check_include_hygiene(f, rep.findings);
  check_span_pairing(f, rep.findings);
  check_alert_transitions(f, rep.findings);
  check_pointer_key(f, rep.findings);
  collect_includes(f, rep);
}

}  // namespace lint
