/// \file cache.cpp
/// Incremental finding cache. One whole-tree lint invocation reads every
/// file (hashing needs the bytes anyway) but only re-runs the rule
/// passes over files whose content hash changed; everything else reuses
/// the cached findings and include facts. The cache is keyed under a
/// configuration hash -- tool version, layers.def, accounting.def and
/// the headers the counter index is extracted from -- so any change to
/// the rules' inputs invalidates every record at once.
///
/// Format (tab-separated, one record per file):
///   parfft-lint-cache <version> <config-hash>
///   F <content-hash> <explicit 0|1> <path>
///   I <line> <allow 0|1> <include-target>
///   V <line> <rule> <message>
///
/// save() writes exactly the records of the files seen this run, so
/// records of deleted files age out instead of accumulating.

#include <fstream>
#include <sstream>

#include "lint.hpp"

namespace lint {

namespace {
constexpr const char* kMagic = "parfft-lint-cache";
constexpr const char* kVersion = "v1";

std::string hex(std::uint64_t v) {
  std::ostringstream os;
  os << std::hex << v;
  return os.str();
}
}  // namespace

void Cache::load(const std::string& path, std::uint64_t config_hash) {
  std::ifstream in(path);
  if (!in) return;  // cold cache
  std::string line;
  if (!std::getline(in, line)) return;
  {
    std::stringstream head(line);
    std::string magic, version, cfg;
    head >> magic >> version >> cfg;
    if (magic != kMagic || version != kVersion || cfg != hex(config_hash))
      return;  // stale tool or configuration: full re-analysis
  }
  Entry* cur = nullptr;
  std::string file;
  while (std::getline(in, line)) {
    std::stringstream ss(line);
    std::string tag;
    if (!std::getline(ss, tag, '\t')) continue;
    if (tag == "F") {
      std::string hash_s, expl;
      if (!std::getline(ss, hash_s, '\t') || !std::getline(ss, expl, '\t') ||
          !std::getline(ss, file))
        return;  // truncated record: drop the rest
      cur = &loaded_[file];
      cur->hash = std::stoull(hash_s, nullptr, 16);
      cur->explicit_file = expl == "1";
    } else if (tag == "I" && cur) {
      std::string ln_s, allow, target;
      if (!std::getline(ss, ln_s, '\t') || !std::getline(ss, allow, '\t') ||
          !std::getline(ss, target))
        return;
      cur->rep.includes.push_back(
          {std::stoull(ln_s), target, allow == "1"});
    } else if (tag == "V" && cur) {
      std::string ln_s, rule, msg;
      if (!std::getline(ss, ln_s, '\t') || !std::getline(ss, rule, '\t') ||
          !std::getline(ss, msg))
        return;
      cur->rep.findings.push_back({file, std::stoull(ln_s), rule, msg});
    }
  }
}

const FileReport* Cache::lookup(const std::string& file, std::uint64_t hash,
                                bool explicit_file) const {
  const auto it = loaded_.find(file);
  if (it == loaded_.end()) return nullptr;
  if (it->second.hash != hash || it->second.explicit_file != explicit_file)
    return nullptr;
  return &it->second.rep;
}

void Cache::put(const std::string& file, std::uint64_t hash,
                bool explicit_file, const FileReport& rep) {
  Entry e;
  e.hash = hash;
  e.explicit_file = explicit_file;
  e.rep = rep;
  current_[file] = std::move(e);
}

bool Cache::save(const std::string& path, std::uint64_t config_hash) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << kMagic << ' ' << kVersion << ' ' << hex(config_hash) << '\n';
  for (const auto& [file, e] : current_) {
    out << "F\t" << hex(e.hash) << '\t' << (e.explicit_file ? 1 : 0) << '\t'
        << file << '\n';
    for (const IncludeRef& inc : e.rep.includes)
      out << "I\t" << inc.line << '\t' << (inc.allow ? 1 : 0) << '\t'
          << inc.target << '\n';
    for (const Finding& v : e.rep.findings)
      out << "V\t" << v.line << '\t' << v.rule << '\t' << v.message << '\n';
  }
  return static_cast<bool>(out);
}

}  // namespace lint
