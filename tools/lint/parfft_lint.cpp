/// \file parfft_lint.cpp
/// Determinism lint for the ParFFT tree.
///
/// Every performance number in this repository is a deterministic
/// virtual-time estimate: seeded runs must be byte-identical (the fault
/// layer's tests assert exactly that). The hazards that silently break
/// such determinism are always the same few, so this checker scans the
/// sources for them and fails the build when one appears:
///
///   wall-clock      wall-clock or entropy reads (system_clock::now,
///                   time(), rand(), std::random_device, a
///                   default-seeded mt19937): results would depend on the
///                   host instead of the seed. All randomness must flow
///                   through parfft::Rng (src/common/random.hpp), which
///                   is why src/common is allowlisted.
///   unordered-iter  iteration over std::unordered_map/set whose body
///                   looks effectful (writes results, traces, reports):
///                   unordered iteration order varies across libstdc++
///                   versions and hash seeds, so anything emitted from
///                   such a loop is nondeterministic. Order-insensitive
///                   loops can be annotated (see below).
///   float-eq        == / != against a floating-point literal in src/:
///                   exact comparison against a computed double is almost
///                   always a rounding-sensitive bug. Exact *sentinel*
///                   comparisons (a value stored and compared untouched)
///                   are fine and must say so with an allow annotation.
///   include-hygiene a header that uses a common std:: component without
///                   directly including its header: such headers compile
///                   only by transitive luck and break standalone TUs
///                   (the CMake header-self-sufficiency check compiles
///                   each public header alone; this is the textual
///                   counterpart with precise line numbers).
///   span-pairing    unbalanced obs::Tracer begin()/end() calls. A parent
///                   span opened with tracer.begin() must be closed by a
///                   tracer.end() in the same file (per tracer receiver,
///                   textually balanced and never closing more than was
///                   opened): a leaked parent span corrupts every later
///                   depth/attribution computed from the trace, and the
///                   paranoid nesting checks only fire at runtime on
///                   traced configurations. Tests that leak spans on
///                   purpose annotate the begin line.
///   alert-transitions
///                   a direct write to survival-layer state (a
///                   BreakerState value, or the state_/stage_ members of
///                   ShardBreaker/BrownoutController) in src/cluster.
///                   Those transitions must flow through set_state() /
///                   set_stage(), whose on_transition hooks the router
///                   turns into survival_log entries and obs Alert spans
///                   -- a raw assignment is a silent transition the audit
///                   trail never sees. Declarations with initializers are
///                   exempt (the object is being born, not transitioned);
///                   the sanctioned setters themselves carry allow
///                   annotations.
///
/// Allowlist mechanism: a line (or the line above it) containing
///   // parfft-lint: allow(<rule>)
/// suppresses findings of <rule> on that line. Files under src/common/
/// are exempt from wall-clock (the blessed Rng lives there). The
/// float-eq rule only applies under src/ -- tests legitimately compare
/// doubles exactly when asserting byte-identical seeded runs.
///
/// Usage: parfft_lint [--expect=rule[,rule...]] <file-or-dir>...
/// Directories are scanned recursively for .cpp/.hpp, skipping build/
/// and lint_fixtures/ (explicit file arguments are always scanned, which
/// is how the fixture tests drive the tool). With --expect, the exit
/// status is inverted per rule: success means every listed rule fired at
/// least once -- the negative-fixture mode ctest uses to prove each rule
/// class actually catches its hazard.

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Finding {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

struct FileText {
  std::string path;
  std::vector<std::string> raw;      ///< original lines (for allow scan)
  std::vector<std::string> code;     ///< comments/strings blanked out
  std::set<std::pair<std::size_t, std::string>> allows;  ///< (line, rule)
};

/// True when `path` (generic form) contains the directory component
/// `dir` (e.g. "src/common").
bool path_contains(const std::string& path, const std::string& dir) {
  return path.find(dir) != std::string::npos;
}

/// Blanks comments and string/char literal contents, preserving line
/// structure so findings keep their line numbers. The allow directives
/// are collected from comment text before it is erased.
void strip(FileText& f) {
  enum class St { Code, Line, Block, Str, Chr };
  St st = St::Code;
  f.code.reserve(f.raw.size());
  for (std::size_t ln = 0; ln < f.raw.size(); ++ln) {
    const std::string& in = f.raw[ln];
    // Allow directives live in comments; scan the raw line.
    const std::string tag = "parfft-lint: allow(";
    for (std::size_t at = in.find(tag); at != std::string::npos;
         at = in.find(tag, at + 1)) {
      std::size_t b = at + tag.size();
      const std::size_t e = in.find(')', b);
      if (e == std::string::npos) break;
      std::stringstream rules(in.substr(b, e - b));
      std::string r;
      while (std::getline(rules, r, ',')) {
        r.erase(std::remove_if(r.begin(), r.end(), ::isspace), r.end());
        // The directive suppresses its own line and the next one, so it
        // can sit above the offending statement.
        f.allows.insert({ln + 1, r});
        f.allows.insert({ln + 2, r});
      }
    }
    std::string out;
    out.reserve(in.size());
    for (std::size_t i = 0; i < in.size(); ++i) {
      const char c = in[i];
      const char n = i + 1 < in.size() ? in[i + 1] : '\0';
      switch (st) {
        case St::Code:
          if (c == '/' && n == '/') {
            st = St::Line;
            i = in.size();  // rest of line is comment
          } else if (c == '/' && n == '*') {
            st = St::Block;
            out += "  ";
            ++i;
          } else if (c == '"') {
            st = St::Str;
            out += '"';
          } else if (c == '\'') {
            st = St::Chr;
            out += '\'';
          } else {
            out += c;
          }
          break;
        case St::Block:
          if (c == '*' && n == '/') {
            st = St::Code;
            out += "  ";
            ++i;
          } else {
            out += ' ';
          }
          break;
        case St::Str:
          if (c == '\\') {
            out += "  ";
            ++i;
          } else if (c == '"') {
            st = St::Code;
            out += '"';
          } else {
            out += ' ';
          }
          break;
        case St::Chr:
          if (c == '\\') {
            out += "  ";
            ++i;
          } else if (c == '\'') {
            st = St::Code;
            out += '\'';
          } else {
            out += ' ';
          }
          break;
        case St::Line:
          break;
      }
    }
    if (st == St::Line) st = St::Code;  // // comments end with the line
    f.code.push_back(std::move(out));
  }
}

bool allowed(const FileText& f, std::size_t line1, const std::string& rule) {
  return f.allows.count({line1, rule}) > 0 || f.allows.count({line1, "all"}) > 0;
}

bool ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

/// Position of `token` in `s` at a word boundary, from `from`.
std::size_t find_word(const std::string& s, const std::string& token,
                      std::size_t from = 0) {
  for (std::size_t p = s.find(token, from); p != std::string::npos;
       p = s.find(token, p + 1)) {
    const bool lb = p == 0 || !ident_char(s[p - 1]);
    const std::size_t e = p + token.size();
    const bool rb = e >= s.size() || !ident_char(s[e]);
    if (lb && rb) return p;
  }
  return std::string::npos;
}

// ------------------------------------------------------------ wall-clock

void check_wall_clock(const FileText& f, std::vector<Finding>& out) {
  if (path_contains(f.path, "src/common/")) return;  // Rng + units live here
  static const std::vector<std::pair<std::string, std::string>> kTokens = {
      {"system_clock", "wall-clock read (std::chrono::system_clock)"},
      {"steady_clock", "wall-clock read (std::chrono::steady_clock)"},
      {"high_resolution_clock", "wall-clock read"},
      {"gettimeofday", "wall-clock read (gettimeofday)"},
      {"clock_gettime", "wall-clock read (clock_gettime)"},
      {"random_device", "nondeterministic entropy (std::random_device)"},
      {"rand", "C PRNG with hidden global state (rand)"},
      {"srand", "C PRNG with hidden global state (srand)"},
      {"getrandom", "nondeterministic entropy (getrandom)"},
  };
  for (std::size_t ln = 0; ln < f.code.size(); ++ln) {
    const std::string& s = f.code[ln];
    if (allowed(f, ln + 1, "wall-clock")) continue;
    for (const auto& [tok, why] : kTokens) {
      std::size_t p = find_word(s, tok);
      if (p == std::string::npos) continue;
      // rand/srand only count as calls.
      if ((tok == "rand" || tok == "srand")) {
        std::size_t q = p + tok.size();
        while (q < s.size() && s[q] == ' ') ++q;
        if (q >= s.size() || s[q] != '(') continue;
      }
      out.push_back({f.path, ln + 1, "wall-clock",
                     why + "; derive all timing/randomness from the seeded "
                           "virtual clock or parfft::Rng"});
      break;
    }
    // `time(` as a C-library call: the argument must look like time()'s
    // time_t* parameter (nullptr/0/NULL/&x), which distinguishes it from
    // a variable or constructor named `time`.
    for (std::size_t p = find_word(s, "time"); p != std::string::npos;
         p = find_word(s, "time", p + 1)) {
      std::size_t q = p + 4;
      while (q < s.size() && s[q] == ' ') ++q;
      if (q >= s.size() || s[q] != '(') continue;
      const bool member = p >= 1 && (s[p - 1] == '.' ||
                                     (p >= 2 && s[p - 2] == '-' && s[p - 1] == '>'));
      if (member) continue;
      std::size_t a = q + 1;
      while (a < s.size() && s[a] == ' ') ++a;
      const bool timey =
          s.compare(a, 7, "nullptr") == 0 || s.compare(a, 4, "NULL") == 0 ||
          (a < s.size() && s[a] == '&') ||
          (a < s.size() && s[a] == '0' && a + 1 < s.size() && s[a + 1] == ')');
      if (!timey) continue;
      out.push_back({f.path, ln + 1, "wall-clock",
                     "wall-clock read (time()); use virtual time"});
      break;
    }
    // Default-constructed mt19937 seeds from a fixed default but is a
    // smell: every engine must be seeded through parfft::Rng.
    for (std::size_t p = find_word(s, "mt19937"); p != std::string::npos;
         p = find_word(s, "mt19937", p + 1)) {
      std::size_t q = p + 7;
      if (q + 3 <= s.size() && s.compare(q, 3, "_64") == 0) q += 3;
      while (q < s.size() && s[q] == ' ') ++q;
      // Skip an optional variable name.
      while (q < s.size() && ident_char(s[q])) ++q;
      while (q < s.size() && s[q] == ' ') ++q;
      const bool argless =
          q >= s.size() || s[q] == ';' ||
          (s[q] == '(' && q + 1 < s.size() && s[q + 1] == ')') ||
          (s[q] == '{' && q + 1 < s.size() && s[q + 1] == '}');
      if (argless) {
        out.push_back({f.path, ln + 1, "wall-clock",
                       "default-seeded mt19937; seed explicitly via "
                       "parfft::Rng"});
        break;
      }
    }
  }
}

// -------------------------------------------------------- unordered-iter

/// Identifiers declared in this file as std::unordered_map/set.
std::set<std::string> unordered_vars(const FileText& f) {
  std::set<std::string> vars;
  for (const std::string& s : f.code) {
    for (const char* type : {"unordered_map", "unordered_set",
                             "unordered_multimap", "unordered_multiset"}) {
      std::size_t p = find_word(s, type);
      if (p == std::string::npos) continue;
      // Skip the template argument list to find the declared name.
      std::size_t q = p + std::strlen(type);
      if (q < s.size() && s[q] == '<') {
        int depth = 0;
        for (; q < s.size(); ++q) {
          if (s[q] == '<') ++depth;
          if (s[q] == '>' && --depth == 0) {
            ++q;
            break;
          }
        }
      }
      while (q < s.size() && (s[q] == ' ' || s[q] == '&' || s[q] == '*')) ++q;
      std::size_t b = q;
      while (q < s.size() && ident_char(s[q])) ++q;
      if (q > b) vars.insert(s.substr(b, q - b));
    }
  }
  return vars;
}

/// Does the statement starting at (line, col) -- the body of a for loop --
/// look effectful? Scans the balanced braces (or the single statement) for
/// sinks that leak iteration order into results, traces or reports.
bool effectful_body(const FileText& f, std::size_t line, std::size_t col,
                    std::size_t* end_line) {
  static const std::vector<std::string> kSinks = {
      "push_back", "emplace_back", "emplace",  "insert", "append", "add",
      "observe",   "record",       "complete", "sample", "write",  "print",
      "result",    "results",      "trace",    "tracer", "report", "rep",
      "out",       "<<",           "+=",
  };
  int depth = 0;
  bool braced = false;
  std::string body;
  std::size_t ln = line;
  std::size_t i = col;
  for (; ln < f.code.size(); ++ln, i = 0) {
    const std::string& s = f.code[ln];
    for (; i < s.size(); ++i) {
      const char c = s[i];
      if (c == '{') {
        ++depth;
        braced = true;
      } else if (c == '}') {
        --depth;
        if (braced && depth == 0) {
          *end_line = ln;
          goto scan;
        }
      } else if (c == ';' && !braced && depth == 0) {
        *end_line = ln;
        goto scan;
      }
      body += c;
    }
    body += '\n';
  }
  *end_line = f.code.size();
scan:
  for (const std::string& sink : kSinks) {
    if (sink == "<<" || sink == "+=") {
      if (body.find(sink) != std::string::npos) return true;
    } else if (find_word(body, sink) != std::string::npos) {
      return true;
    }
  }
  return false;
}

void check_unordered_iter(const FileText& f, std::vector<Finding>& out) {
  const std::set<std::string> vars = unordered_vars(f);
  for (std::size_t ln = 0; ln < f.code.size(); ++ln) {
    const std::string& s = f.code[ln];
    std::size_t p = find_word(s, "for");
    if (p == std::string::npos) continue;
    std::size_t open = s.find('(', p);
    if (open == std::string::npos) continue;
    // Find the range expression of a range-for (text after ':' inside the
    // for parens) or an iterator loop over `x.begin()`.
    int depth = 0;
    std::size_t close = open;
    for (; close < s.size(); ++close) {
      if (s[close] == '(') ++depth;
      if (s[close] == ')' && --depth == 0) break;
    }
    if (close >= s.size()) close = s.size();
    const std::string head = s.substr(open + 1, close - open - 1);
    bool over_unordered = false;
    const std::size_t colon = head.find(':');
    std::string range =
        colon != std::string::npos ? head.substr(colon + 1) : head;
    if (range.find("unordered_") != std::string::npos) over_unordered = true;
    for (const std::string& v : vars) {
      if (find_word(range, v) != std::string::npos) over_unordered = true;
    }
    if (!over_unordered) continue;
    if (colon == std::string::npos &&
        range.find(".begin") == std::string::npos &&
        range.find(".cbegin") == std::string::npos)
      continue;  // plain for over an index; order is the index order
    std::size_t end_line = ln;
    if (!effectful_body(f, ln, close + 1, &end_line)) continue;
    if (allowed(f, ln + 1, "unordered-iter")) continue;
    out.push_back(
        {f.path, ln + 1, "unordered-iter",
         "iteration over an unordered container feeds results/traces/"
         "reports; unordered order is not deterministic across stdlibs -- "
         "iterate a sorted view or use std::map"});
  }
}

// -------------------------------------------------------------- float-eq

bool float_literal_at(const std::string& s, std::size_t i, bool backwards) {
  // Forward: digits '.' digits [exp]; also ".5". Backwards: scan left.
  if (backwards) {
    // Find the token ending at i (exclusive); it must look like a float.
    std::size_t e = i;
    while (e > 0 && s[e - 1] == ' ') --e;
    std::size_t b = e;
    while (b > 0 && (std::isdigit(static_cast<unsigned char>(s[b - 1])) ||
                     s[b - 1] == '.' || s[b - 1] == 'e' || s[b - 1] == 'E' ||
                     s[b - 1] == 'f' || s[b - 1] == 'F' || s[b - 1] == '+' ||
                     s[b - 1] == '-'))
      --b;
    const std::string tok = s.substr(b, e - b);
    if (b > 0 && ident_char(s[b - 1])) return false;  // identifier tail
    return tok.find('.') != std::string::npos &&
           tok.find_first_of("0123456789") != std::string::npos;
  }
  std::size_t b = i;
  while (b < s.size() && s[b] == ' ') ++b;
  if (b < s.size() && (s[b] == '+' || s[b] == '-')) ++b;
  std::size_t d = b;
  bool dot = false, digit = false;
  while (d < s.size() &&
         (std::isdigit(static_cast<unsigned char>(s[d])) || s[d] == '.')) {
    dot |= s[d] == '.';
    digit |= std::isdigit(static_cast<unsigned char>(s[d])) != 0;
    ++d;
  }
  if (d < s.size() && ident_char(s[d]) && s[d] != 'e' && s[d] != 'E' &&
      s[d] != 'f' && s[d] != 'F')
    return false;  // e.g. 1.5x -- not a literal (cannot happen in valid C++)
  return dot && digit;
}

void check_float_eq(const FileText& f, std::vector<Finding>& out,
                    bool explicit_file) {
  if (!explicit_file && !path_contains(f.path, "src/")) return;
  for (std::size_t ln = 0; ln < f.code.size(); ++ln) {
    const std::string& s = f.code[ln];
    for (std::size_t i = 0; i + 1 < s.size(); ++i) {
      if (!((s[i] == '=' || s[i] == '!') && s[i + 1] == '=')) continue;
      if (i > 0 && (s[i - 1] == '=' || s[i - 1] == '<' || s[i - 1] == '>'))
        continue;  // ===, <=, >= fragments
      if (i + 2 < s.size() && s[i + 2] == '=') continue;
      const bool lhs = i > 0 && float_literal_at(s, i, /*backwards=*/true);
      const bool rhs = float_literal_at(s, i + 2, /*backwards=*/false);
      if (!lhs && !rhs) continue;
      if (allowed(f, ln + 1, "float-eq")) continue;
      out.push_back(
          {f.path, ln + 1, "float-eq",
           "exact ==/!= against a floating-point literal; computed doubles "
           "compare unreliably -- use a tolerance, or annotate "
           "'parfft-lint: allow(float-eq)' if this is an exact sentinel"});
      ++i;
    }
  }
}

// ------------------------------------------------------- include-hygiene

void check_include_hygiene(const FileText& f, std::vector<Finding>& out) {
  if (f.path.size() < 4 || f.path.substr(f.path.size() - 4) != ".hpp") return;
  // token -> acceptable headers (any one suffices).
  static const std::vector<std::pair<std::string, std::vector<std::string>>>
      kNeeds = {
          {"std::vector", {"<vector>"}},
          {"std::string", {"<string>"}},
          {"std::map", {"<map>"}},
          {"std::multimap", {"<map>"}},
          {"std::unordered_map", {"<unordered_map>"}},
          {"std::unordered_set", {"<unordered_set>"}},
          {"std::set", {"<set>"}},
          {"std::list", {"<list>"}},
          {"std::deque", {"<deque>"}},
          {"std::array", {"<array>"}},
          {"std::optional", {"<optional>"}},
          {"std::function", {"<functional>"}},
          {"std::atomic", {"<atomic>"}},
          {"std::mutex", {"<mutex>"}},
          {"std::lock_guard", {"<mutex>"}},
          {"std::unique_lock", {"<mutex>"}},
          {"std::condition_variable", {"<condition_variable>"}},
          {"std::thread", {"<thread>"}},
          {"std::unique_ptr", {"<memory>"}},
          {"std::shared_ptr", {"<memory>"}},
          {"std::pair", {"<utility>"}},
          {"std::uint64_t", {"<cstdint>"}},
          {"std::int64_t", {"<cstdint>"}},
          {"std::uint32_t", {"<cstdint>"}},
          {"std::int32_t", {"<cstdint>"}},
          {"std::uint8_t", {"<cstdint>"}},
          {"std::size_t", {"<cstddef>", "<cstdint>", "<cstdio>", "<cstring>"}},
          {"std::byte", {"<cstddef>"}},
          {"std::complex", {"<complex>"}},
          {"std::ostream", {"<iosfwd>", "<ostream>", "<iostream>"}},
          {"std::istream", {"<iosfwd>", "<istream>", "<iostream>"}},
      };
  std::set<std::string> includes;
  for (const std::string& s : f.raw) {
    std::size_t p = s.find("#include");
    if (p == std::string::npos) continue;
    std::size_t b = s.find_first_of("<\"", p);
    if (b == std::string::npos) continue;
    std::size_t e = s.find_first_of(">\"", b + 1);
    if (e == std::string::npos) continue;
    includes.insert(s.substr(b, e - b + 1));
  }
  for (const auto& [token, headers] : kNeeds) {
    bool have = false;
    for (const std::string& h : headers) have |= includes.count(h) > 0;
    if (have) continue;
    for (std::size_t ln = 0; ln < f.code.size(); ++ln) {
      if (f.code[ln].find(token) == std::string::npos) continue;
      // Word-boundary check on the tail component.
      const std::size_t p = f.code[ln].find(token);
      const std::size_t e = p + token.size();
      if (e < f.code[ln].size() && ident_char(f.code[ln][e])) continue;
      if (allowed(f, ln + 1, "include-hygiene")) continue;
      out.push_back({f.path, ln + 1, "include-hygiene",
                     "uses " + token + " without including " + headers[0] +
                         "; headers must be self-sufficient"});
      break;  // one finding per missing header per file
    }
  }
}

// ---------------------------------------------------------- span-pairing

/// Identifiers declared in this file as (obs::)Tracer variables; the
/// member name `tracer` (RunTrace::tracer) is always a tracer receiver.
std::set<std::string> tracer_vars(const FileText& f) {
  std::set<std::string> vars = {"tracer"};
  for (const std::string& s : f.code) {
    for (std::size_t p = find_word(s, "Tracer"); p != std::string::npos;
         p = find_word(s, "Tracer", p + 1)) {
      std::size_t q = p + 6;
      while (q < s.size() && (s[q] == ' ' || s[q] == '&')) ++q;
      std::size_t b = q;
      while (q < s.size() && ident_char(s[q])) ++q;
      if (q > b) vars.insert(s.substr(b, q - b));
    }
  }
  return vars;
}

void check_span_pairing(const FileText& f, std::vector<Finding>& out) {
  const std::set<std::string> vars = tracer_vars(f);
  // The identifier immediately left of the '.' / '->' before position `p`.
  auto receiver = [](const std::string& s, std::size_t p) -> std::string {
    std::size_t e;
    if (p >= 1 && s[p - 1] == '.') {
      e = p - 1;
    } else if (p >= 2 && s[p - 2] == '-' && s[p - 1] == '>') {
      e = p - 2;
    } else {
      return {};
    }
    std::size_t b = e;
    while (b > 0 && ident_char(s[b - 1])) --b;
    return s.substr(b, e - b);
  };

  struct OpenSpan {
    std::size_t line;  ///< 1-based line of the begin()
    bool allow;        ///< suppressed via the allow mechanism
  };
  std::map<std::string, std::vector<OpenSpan>> open;
  for (std::size_t ln = 0; ln < f.code.size(); ++ln) {
    const std::string& s = f.code[ln];
    // (column, receiver, +1 begin / -1 end) events of this line, in order.
    struct Event {
      std::size_t col;
      std::string recv;
      int delta;
    };
    std::vector<Event> events;
    for (const auto& [tok, delta] :
         {std::pair<const char*, int>{"begin", +1}, {"end", -1}}) {
      const std::size_t len = std::strlen(tok);
      for (std::size_t p = find_word(s, tok); p != std::string::npos;
           p = find_word(s, tok, p + 1)) {
        std::size_t q = p + len;
        while (q < s.size() && s[q] == ' ') ++q;
        if (q >= s.size() || s[q] != '(') continue;
        const std::string r = receiver(s, p);
        if (vars.count(r) == 0) continue;  // container .begin()/.end() etc.
        events.push_back({p, r, delta});
      }
    }
    std::sort(events.begin(), events.end(),
              [](const Event& a, const Event& b) { return a.col < b.col; });
    for (const Event& e : events) {
      std::vector<OpenSpan>& stack = open[e.recv];
      if (e.delta > 0) {
        stack.push_back({ln + 1, allowed(f, ln + 1, "span-pairing")});
      } else if (!stack.empty()) {
        stack.pop_back();
      } else if (!allowed(f, ln + 1, "span-pairing")) {
        out.push_back({f.path, ln + 1, "span-pairing",
                       "tracer end() without an open begin() in this file; "
                       "parent spans must be opened and closed in the same "
                       "scope"});
      }
    }
  }
  for (const auto& [recv, stack] : open) {
    (void)recv;
    for (const OpenSpan& o : stack) {
      if (o.allow) continue;
      out.push_back({f.path, o.line, "span-pairing",
                     "tracer begin() without a matching end() in this file; "
                     "a leaked parent span corrupts span nesting -- close "
                     "it in the same scope or annotate "
                     "'parfft-lint: allow(span-pairing)'"});
    }
  }
}

// ----------------------------------------------------- alert-transitions

/// Survival state (ShardBreaker::state_, BrownoutController::stage_) may
/// only change through set_state()/set_stage(): those fire the
/// on_transition hooks that become ClusterReport::survival_log entries
/// and obs Alert spans (the "no silent transitions" contract in
/// survival.hpp). A raw assignment changes behavior without leaving a
/// trace, which is exactly the failure mode a post-incident audit cannot
/// survive. Scoped to src/cluster (and explicit file arguments, for the
/// fixture); a declaration with initializer -- the type token directly
/// before the target -- is creation, not transition, and is exempt.
void check_alert_transitions(const FileText& f, std::vector<Finding>& out,
                             bool explicit_file) {
  if (!explicit_file && !path_contains(f.path, "src/cluster")) return;
  for (std::size_t ln = 0; ln < f.code.size(); ++ln) {
    const std::string& s = f.code[ln];
    for (std::size_t i = 0; i < s.size(); ++i) {
      if (s[i] != '=') continue;
      if (i + 1 < s.size() && s[i + 1] == '=') {
        ++i;  // == comparison
        continue;
      }
      if (i > 0 && std::strchr("=!<>+-*/%&|^", s[i - 1]))
        continue;  // compound assignment or comparison fragment
      // The identifier being assigned, immediately left of the '='.
      std::size_t e = i;
      while (e > 0 && s[e - 1] == ' ') --e;
      std::size_t b = e;
      while (b > 0 && ident_char(s[b - 1])) --b;
      const std::string target = s.substr(b, e - b);
      // `BreakerState state_ = ...;` / `int stage_ = 0;`: a type token
      // precedes the target, so this is a declaration's initializer.
      std::size_t d = b;
      while (d > 0 && s[d - 1] == ' ') --d;
      const bool declared = d > 0 && ident_char(s[d - 1]);
      const bool member_write =
          !declared && (target == "state_" || target == "stage_");
      const bool enum_write =
          !declared && s.find("BreakerState::", i) != std::string::npos &&
          find_word(s.substr(0, i), "BreakerState") == std::string::npos;
      if (!member_write && !enum_write) continue;
      if (allowed(f, ln + 1, "alert-transitions")) continue;
      out.push_back(
          {f.path, ln + 1, "alert-transitions",
           "direct write to survival state" +
               (target.empty() ? std::string() : " (" + target + ")") +
               "; breaker/brownout transitions must go through set_state()/"
               "set_stage() so on_transition logs them as survival events "
               "and Alert spans -- or annotate "
               "'parfft-lint: allow(alert-transitions)'"});
    }
  }
}

// ----------------------------------------------------------------- driver

bool scannable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp";
}

void collect(const fs::path& root, std::vector<std::pair<fs::path, bool>>& out) {
  if (fs::is_regular_file(root)) {
    out.push_back({root, /*explicit_file=*/true});
    return;
  }
  if (!fs::is_directory(root)) {
    std::cerr << "parfft_lint: no such file or directory: " << root << "\n";
    std::exit(2);
  }
  std::vector<fs::path> files;
  for (auto it = fs::recursive_directory_iterator(root);
       it != fs::recursive_directory_iterator(); ++it) {
    const std::string name = it->path().filename().string();
    if (it->is_directory() && (name == "build" || name == "lint_fixtures" ||
                               name == ".git")) {
      it.disable_recursion_pending();
      continue;
    }
    if (it->is_regular_file() && scannable(it->path()))
      files.push_back(it->path());
  }
  std::sort(files.begin(), files.end());  // deterministic report order
  for (const fs::path& p : files) out.push_back({p, false});
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> expect;
  std::vector<std::pair<fs::path, bool>> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--expect=", 0) == 0) {
      std::stringstream ss(arg.substr(9));
      std::string r;
      while (std::getline(ss, r, ',')) expect.push_back(r);
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: parfft_lint [--expect=rule,...] <file-or-dir>...\n"
                   "rules: wall-clock unordered-iter float-eq "
                   "include-hygiene span-pairing alert-transitions\n";
      return 0;
    } else {
      collect(arg, files);
    }
  }
  if (files.empty()) {
    std::cerr << "parfft_lint: no inputs\n";
    return 2;
  }

  std::vector<Finding> findings;
  for (const auto& [path, explicit_file] : files) {
    FileText f;
    f.path = fs::path(path).generic_string();
    std::ifstream in(path);
    if (!in) {
      std::cerr << "parfft_lint: cannot read " << f.path << "\n";
      return 2;
    }
    std::string line;
    while (std::getline(in, line)) f.raw.push_back(line);
    strip(f);
    check_wall_clock(f, findings);
    check_unordered_iter(f, findings);
    check_float_eq(f, findings, explicit_file);
    check_include_hygiene(f, findings);
    check_span_pairing(f, findings);
    check_alert_transitions(f, findings, explicit_file);
  }

  for (const Finding& v : findings)
    std::cerr << v.file << ":" << v.line << ": [" << v.rule << "] "
              << v.message << "\n";

  if (!expect.empty()) {
    // Negative-fixture mode: succeed iff every expected rule fired.
    bool ok = true;
    for (const std::string& r : expect) {
      const bool hit = std::any_of(findings.begin(), findings.end(),
                                   [&](const Finding& v) { return v.rule == r; });
      if (!hit) {
        std::cerr << "parfft_lint: expected a '" << r
                  << "' violation but none was found\n";
        ok = false;
      }
    }
    return ok ? 0 : 1;
  }
  if (!findings.empty()) {
    std::cerr << "parfft_lint: " << findings.size() << " finding(s)\n";
    return 1;
  }
  return 0;
}
