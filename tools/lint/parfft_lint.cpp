/// \file parfft_lint.cpp
/// Driver of the ParFFT whole-program analyzer.
///
/// Every performance number in this repository is a deterministic
/// virtual-time estimate and the repo's architecture rests on two
/// invariants the compiler cannot see: the strict module layer order
/// (tools/lint/layers.def) and the accounting discipline behind the
/// ServeReport/ClusterReport/PlanCache conservation identities
/// (tools/lint/accounting.def). This tool makes violations of either --
/// plus the classic determinism hazards -- a build failure.
///
/// Passes (see lint.hpp for the pipeline layout; docs/static-analysis.md
/// for the full rule reference):
///   per-file   wall-clock, unordered-iter, float-eq, include-hygiene,
///              span-pairing, alert-transitions, pointer-key, accounting
///   whole-tree layering (include graph vs layers.def: upward edges,
///              same-layer cross-includes, unknown modules, cycles)
///
/// Allowlist mechanism: a line (or the line above it) containing
///   // parfft-lint: allow(<rule>)
/// suppresses findings of <rule> on that line. Files under src/common/
/// are exempt from wall-clock (the blessed Rng lives there); float-eq,
/// alert-transitions, pointer-key and accounting are scoped to src/
/// (explicit file arguments are always in scope, which is how the
/// fixture tests drive the tool).
///
/// Usage: parfft_lint [options] <file-or-dir>...
///   --layers=FILE    layer spec; enables the layering pass
///   --counters=FILE  accounting spec; enables the accounting pass
///   --cache=FILE     incremental cache keyed by content hash
///   --baseline=FILE  suppress grandfathered findings listed in FILE
///   --sarif=FILE     write a SARIF 2.1.0 log of the findings
///   --expect=r[,r]   negative-fixture mode: exit 0 iff every listed
///                    rule fired at least once (unknown rule names are a
///                    usage error -- the list is validated against the
///                    rule registry)
///
/// Directories are scanned recursively for .cpp/.hpp, skipping build/
/// and lint_fixtures/. Findings are sorted by (file, line, rule) before
/// printing, so output is byte-stable across traversal orders; the
/// summary line reports how many files were re-analysed vs served from
/// the cache. Exit 0 clean, 1 findings, 2 usage error.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "lint.hpp"

namespace {

namespace fs = std::filesystem;

bool scannable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp";
}

void collect(const fs::path& root,
             std::vector<std::pair<fs::path, bool>>& out) {
  if (fs::is_regular_file(root)) {
    out.push_back({root, /*explicit_file=*/true});
    return;
  }
  if (!fs::is_directory(root)) {
    std::cerr << "parfft_lint: no such file or directory: " << root << "\n";
    std::exit(2);
  }
  std::vector<fs::path> files;
  for (auto it = fs::recursive_directory_iterator(root);
       it != fs::recursive_directory_iterator(); ++it) {
    const std::string name = it->path().filename().string();
    if (it->is_directory() && (name == "build" || name == "lint_fixtures" ||
                               name == ".git")) {
      it.disable_recursion_pending();
      continue;
    }
    if (it->is_regular_file() && scannable(it->path()))
      files.push_back(it->path());
  }
  std::sort(files.begin(), files.end());
  for (const fs::path& p : files) out.push_back({p, false});
}

std::string file_contents(const fs::path& p, bool& ok) {
  std::ifstream in(p, std::ios::binary);
  if (!in) {
    ok = false;
    return {};
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  ok = true;
  return buf.str();
}

void usage(std::ostream& os) {
  os << "usage: parfft_lint [options] <file-or-dir>...\n"
        "options:\n"
        "  --layers=FILE    layer spec (enables the layering pass)\n"
        "  --counters=FILE  accounting spec (enables the accounting pass)\n"
        "  --cache=FILE     incremental content-hash finding cache\n"
        "  --baseline=FILE  baseline suppressions "
        "(rule<TAB>path<TAB>line)\n"
        "  --sarif=FILE     write SARIF 2.1.0 output\n"
        "  --expect=r[,r]   negative-fixture mode (exit 0 iff each rule "
        "fired)\n"
        "rules:\n";
  for (const lint::Rule& r : lint::registry()) {
    const std::string name = r.name;
    os << "  " << name << std::string(name.size() < 18 ? 18 - name.size() : 1, ' ')
       << r.summary << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> expect;
  std::vector<std::pair<fs::path, bool>> files;
  std::string layers_path, counters_path, cache_path, baseline_path,
      sarif_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&arg](const char* flag) {
      return arg.substr(std::string(flag).size());
    };
    if (arg.rfind("--expect=", 0) == 0) {
      std::stringstream ss(value("--expect="));
      std::string r;
      while (std::getline(ss, r, ',')) expect.push_back(r);
    } else if (arg.rfind("--layers=", 0) == 0) {
      layers_path = value("--layers=");
    } else if (arg.rfind("--counters=", 0) == 0) {
      counters_path = value("--counters=");
    } else if (arg.rfind("--cache=", 0) == 0) {
      cache_path = value("--cache=");
    } else if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = value("--baseline=");
    } else if (arg.rfind("--sarif=", 0) == 0) {
      sarif_path = value("--sarif=");
    } else if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "parfft_lint: unknown option " << arg << "\n";
      usage(std::cerr);
      return 2;
    } else {
      collect(arg, files);
    }
  }
  // --expect names are validated against the registry: a typo'd or
  // removed rule must be a hard error, not a fixture that silently
  // stops testing anything.
  for (const std::string& r : expect) {
    if (!lint::known_rule(r)) {
      std::cerr << "parfft_lint: --expect names unknown rule '" << r
                << "'; known rules:";
      for (const lint::Rule& known : lint::registry())
        std::cerr << ' ' << known.name;
      std::cerr << "\n";
      return 2;
    }
  }
  if (files.empty()) {
    std::cerr << "parfft_lint: no inputs\n";
    return 2;
  }

  std::string err;
  lint::LayerSpec layers;
  if (!layers_path.empty() &&
      !lint::parse_layer_spec(layers_path, layers, err)) {
    std::cerr << "parfft_lint: " << err << "\n";
    return 2;
  }
  lint::CounterSpec counters;
  if (!counters_path.empty() &&
      !lint::parse_counter_spec(counters_path, counters, err)) {
    std::cerr << "parfft_lint: " << err << "\n";
    return 2;
  }
  lint::Baseline baseline;
  if (!baseline_path.empty() &&
      !lint::load_baseline(baseline_path, baseline, err)) {
    std::cerr << "parfft_lint: " << err << "\n";
    return 2;
  }

  // The configuration hash: any change to the tool, the specs or the
  // headers the counter index is extracted from invalidates the cache.
  std::uint64_t config = lint::fnv1a("parfft-lint-config-v1");
  for (const std::string& spec_path : {layers_path, counters_path}) {
    if (spec_path.empty()) continue;
    bool ok = false;
    config = lint::fnv1a(file_contents(spec_path, ok), config);
  }
  for (const lint::CounterType& t : counters.types) {
    std::string joined = t.name;
    for (const std::string& fname : t.fields) joined += "," + fname;
    config = lint::fnv1a(joined, config);
  }

  lint::Cache cache;
  if (!cache_path.empty()) cache.load(cache_path, config);

  // Per-file analysis (cache-aware). FileReports are kept alive for the
  // whole-program layering pass.
  std::vector<std::pair<std::string, lint::FileReport>> reports;
  reports.reserve(files.size());
  std::size_t analysed = 0, cached = 0;
  for (const auto& [path, explicit_file] : files) {
    const std::string generic = fs::path(path).generic_string();
    bool ok = false;
    const std::string content = file_contents(path, ok);
    if (!ok) {
      std::cerr << "parfft_lint: cannot read " << generic << "\n";
      return 2;
    }
    const std::uint64_t hash = lint::fnv1a(content);
    if (const lint::FileReport* hit = cache.lookup(generic, hash, explicit_file)) {
      reports.emplace_back(generic, *hit);
      ++cached;
    } else {
      lint::FileText f;
      f.path = generic;
      f.explicit_file = explicit_file;
      lint::build_file_text(f, content);
      lint::FileReport rep;
      lint::run_file_rules(f, rep);
      if (counters.loaded()) lint::check_accounting(f, counters, rep.findings);
      reports.emplace_back(generic, std::move(rep));
      ++analysed;
    }
    cache.put(generic, hash, explicit_file, reports.back().second);
  }

  std::vector<lint::Finding> findings;
  for (const auto& [path, rep] : reports) {
    (void)path;
    findings.insert(findings.end(), rep.findings.begin(), rep.findings.end());
  }
  if (layers.loaded()) {
    std::vector<std::pair<std::string, const lint::FileReport*>> facts;
    facts.reserve(reports.size());
    for (const auto& [path, rep] : reports) facts.emplace_back(path, &rep);
    lint::check_layering(facts, layers, findings);
  }

  lint::sort_findings(findings);
  std::vector<std::string> stale;
  const std::size_t suppressed =
      lint::apply_baseline(findings, baseline, stale);
  for (const std::string& key : stale) {
    std::string shown = key;
    for (char& c : shown)
      if (c == '\t') c = ' ';
    std::cerr << "parfft_lint: note: stale baseline entry (" << shown
              << ") -- the finding no longer exists; prune it\n";
  }

  for (const lint::Finding& v : findings)
    std::cerr << v.file << ":" << v.line << ": [" << v.rule << "] "
              << v.message << "\n";

  if (!sarif_path.empty() && !lint::write_sarif(sarif_path, findings)) {
    std::cerr << "parfft_lint: cannot write SARIF to " << sarif_path << "\n";
    return 2;
  }
  if (!cache_path.empty() && !cache.save(cache_path, config))
    std::cerr << "parfft_lint: warning: cannot write cache " << cache_path
              << "\n";

  std::cerr << "parfft_lint: " << findings.size() << " finding(s)"
            << (suppressed ? " (+" + std::to_string(suppressed) +
                                 " baselined)"
                           : "")
            << "; analysed " << analysed << " file(s), " << cached
            << " cached\n";

  if (!expect.empty()) {
    // Negative-fixture mode: succeed iff every expected rule fired.
    bool ok = true;
    for (const std::string& r : expect) {
      const bool hit =
          std::any_of(findings.begin(), findings.end(),
                      [&](const lint::Finding& v) { return v.rule == r; });
      if (!hit) {
        std::cerr << "parfft_lint: expected a '" << r
                  << "' violation but none was found\n";
        ok = false;
      }
    }
    return ok ? 0 : 1;
  }
  return findings.empty() ? 0 : 1;
}
