/// \file source.cpp
/// Source-text layer of parfft_lint: line splitting, comment/string
/// stripping (preserving line structure so findings keep their line
/// numbers), allow-directive collection, token helpers and the FNV-1a
/// hash the incremental cache keys on.

#include <algorithm>
#include <cctype>
#include <sstream>

#include "lint.hpp"

namespace lint {

bool path_contains(const std::string& path, const std::string& dir) {
  return path.find(dir) != std::string::npos;
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::size_t find_word(const std::string& s, const std::string& token,
                      std::size_t from) {
  for (std::size_t p = s.find(token, from); p != std::string::npos;
       p = s.find(token, p + 1)) {
    const bool lb = p == 0 || !ident_char(s[p - 1]);
    const std::size_t e = p + token.size();
    const bool rb = e >= s.size() || !ident_char(s[e]);
    if (lb && rb) return p;
  }
  return std::string::npos;
}

std::uint64_t fnv1a(const std::string& data, std::uint64_t seed) {
  std::uint64_t h = seed;
  for (const char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

bool allowed(const FileText& f, std::size_t line1, const std::string& rule) {
  return f.allows.count({line1, rule}) > 0 ||
         f.allows.count({line1, "all"}) > 0;
}

namespace {

/// Blanks comments and string/char literal contents. The allow
/// directives are collected from comment text before it is erased.
void strip(FileText& f) {
  enum class St { Code, Line, Block, Str, Chr };
  St st = St::Code;
  f.code.reserve(f.raw.size());
  for (std::size_t ln = 0; ln < f.raw.size(); ++ln) {
    const std::string& in = f.raw[ln];
    // Allow directives live in comments; scan the raw line.
    const std::string tag = "parfft-lint: allow(";
    for (std::size_t at = in.find(tag); at != std::string::npos;
         at = in.find(tag, at + 1)) {
      std::size_t b = at + tag.size();
      const std::size_t e = in.find(')', b);
      if (e == std::string::npos) break;
      std::stringstream rules(in.substr(b, e - b));
      std::string r;
      while (std::getline(rules, r, ',')) {
        r.erase(std::remove_if(r.begin(), r.end(), ::isspace), r.end());
        // The directive suppresses its own line and the next one, so it
        // can sit above the offending statement.
        f.allows.insert({ln + 1, r});
        f.allows.insert({ln + 2, r});
      }
    }
    std::string out;
    out.reserve(in.size());
    for (std::size_t i = 0; i < in.size(); ++i) {
      const char c = in[i];
      const char n = i + 1 < in.size() ? in[i + 1] : '\0';
      switch (st) {
        case St::Code:
          if (c == '/' && n == '/') {
            st = St::Line;
            i = in.size();  // rest of line is comment
          } else if (c == '/' && n == '*') {
            st = St::Block;
            out += "  ";
            ++i;
          } else if (c == '"') {
            st = St::Str;
            out += '"';
          } else if (c == '\'') {
            st = St::Chr;
            out += '\'';
          } else {
            out += c;
          }
          break;
        case St::Block:
          if (c == '*' && n == '/') {
            st = St::Code;
            out += "  ";
            ++i;
          } else {
            out += ' ';
          }
          break;
        case St::Str:
          if (c == '\\') {
            out += "  ";
            ++i;
          } else if (c == '"') {
            st = St::Code;
            out += '"';
          } else {
            out += ' ';
          }
          break;
        case St::Chr:
          if (c == '\\') {
            out += "  ";
            ++i;
          } else if (c == '\'') {
            st = St::Code;
            out += '\'';
          } else {
            out += ' ';
          }
          break;
        case St::Line:
          break;
      }
    }
    if (st == St::Line) st = St::Code;  // // comments end with the line
    f.code.push_back(std::move(out));
  }
}

}  // namespace

void build_file_text(FileText& f, const std::string& content) {
  std::size_t b = 0;
  while (b <= content.size()) {
    std::size_t e = content.find('\n', b);
    if (e == std::string::npos) {
      if (b < content.size()) f.raw.push_back(content.substr(b));
      break;
    }
    std::string line = content.substr(b, e - b);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    f.raw.push_back(std::move(line));
    b = e + 1;
  }
  strip(f);
}

const std::vector<Rule>& registry() {
  static const std::vector<Rule> kRules = {
      {"wall-clock",
       "wall-clock or entropy read outside src/common; use virtual time "
       "and parfft::Rng"},
      {"unordered-iter",
       "effectful iteration over an unordered container; order is not "
       "deterministic across stdlibs"},
      {"float-eq",
       "exact ==/!= against a floating-point literal in src/; use a "
       "tolerance or annotate a sentinel"},
      {"include-hygiene",
       "header uses a std:: component without including its header"},
      {"span-pairing",
       "unbalanced tracer begin()/end(); a leaked parent span corrupts "
       "attribution"},
      {"alert-transitions",
       "direct write to survival state; transitions must flow through "
       "set_state()/set_stage()"},
      {"pointer-key",
       "pointer-keyed map/set or address-based hashing; iteration and "
       "hash order follow allocation addresses, not the seed"},
      {"accounting",
       "direct write to a report/cache counter outside its sanctioned "
       "accessor file; verify() identities could drift"},
      {"layering",
       "include edge violates the layer order in layers.def (upward, "
       "same-layer cross-module, unknown module, or cycle)"},
  };
  return kRules;
}

bool known_rule(const std::string& name) {
  for (const Rule& r : registry())
    if (name == r.name) return true;
  return false;
}

}  // namespace lint
