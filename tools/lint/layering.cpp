/// \file layering.cpp
/// The whole-program architecture pass: parses the checked-in layer
/// spec (tools/lint/layers.def), classifies every scanned file into a
/// src/ module or an open tree, builds the module dependency graph from
/// the per-file include facts, and reports
///
///   - upward edges (a module including a higher layer),
///   - same-layer cross-module edges (two modules of one layer may not
///     know each other; promoting one is an explicit layers.def change),
///   - src/ modules missing from the spec (the spec must be amended
///     deliberately, never grown by accident), and
///   - include cycles (always implied by one of the above when every
///     module is specced, but reported explicitly so a broken or partial
///     spec still fails closed).
///
/// The pass runs on cached facts, so an incremental run with zero
/// re-analysed files still checks the global property.

#include <fstream>
#include <sstream>

#include "lint.hpp"

namespace lint {

bool parse_layer_spec(const std::string& path, LayerSpec& spec,
                      std::string& err) {
  std::ifstream in(path);
  if (!in) {
    err = "cannot read layer spec " + path;
    return false;
  }
  spec.path = path;
  std::string line;
  std::size_t ln = 0;
  while (std::getline(in, line)) {
    ++ln;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::stringstream ss(line);
    std::string kw;
    if (!(ss >> kw)) continue;
    std::string mod;
    if (kw == "layer") {
      std::vector<std::string> mods;
      while (ss >> mod) {
        if (spec.level.count(mod)) {
          err = path + ":" + std::to_string(ln) + ": module '" + mod +
                "' listed twice";
          return false;
        }
        spec.level[mod] = static_cast<int>(spec.layers.size());
        mods.push_back(mod);
      }
      if (mods.empty()) {
        err = path + ":" + std::to_string(ln) + ": empty layer";
        return false;
      }
      spec.layers.push_back(std::move(mods));
    } else if (kw == "open") {
      while (ss >> mod) spec.open.insert(mod);
    } else {
      err = path + ":" + std::to_string(ln) + ": unknown keyword '" + kw +
            "' (expected 'layer' or 'open')";
      return false;
    }
  }
  if (spec.layers.empty()) {
    err = path + ": no layers defined";
    return false;
  }
  return true;
}

ModuleOf classify_path(const std::string& path, const LayerSpec& spec) {
  ModuleOf out;
  // Split into components; a "src" component followed by a module
  // directory wins over an enclosing open tree, so fixture trees like
  // tests/lint_fixtures/layering_tree/src/core/x.cpp classify as core.
  std::vector<std::string> comps;
  std::stringstream ss(path);
  std::string c;
  while (std::getline(ss, c, '/'))
    if (!c.empty()) comps.push_back(c);
  for (std::size_t i = 0; i + 1 < comps.size(); ++i) {
    if (comps[i] != "src") continue;
    const std::string& next = comps[i + 1];
    if (spec.level.count(next)) {
      out.module = next;
      return out;
    }
    // A directory (not the file itself) under src/ that the spec does
    // not know: report it so layers.def is amended deliberately.
    if (i + 2 < comps.size()) {
      out.unknown = next;
      return out;
    }
  }
  for (const std::string& comp : comps) {
    if (spec.open.count(comp)) {
      out.open = true;
      return out;
    }
  }
  return out;
}

namespace {

/// First path component of an include target, when it names a module.
std::string include_module(const std::string& target, const LayerSpec& spec) {
  const std::size_t slash = target.find('/');
  if (slash == std::string::npos) return {};  // sibling include, no module
  const std::string head = target.substr(0, slash);
  return spec.level.count(head) ? head : std::string();
}

struct Edge {
  std::string file;  ///< representative include site
  std::size_t line = 0;
  std::string target;  ///< include text, for the message
};

}  // namespace

void check_layering(
    const std::vector<std::pair<std::string, const FileReport*>>& files,
    const LayerSpec& spec, std::vector<Finding>& out) {
  // module -> module -> representative include site (first in file order;
  // the caller sorts findings, so determinism does not depend on it).
  std::map<std::string, std::map<std::string, Edge>> graph;
  std::set<std::string> unknown_reported;
  for (const auto& [path, rep] : files) {
    const ModuleOf mod = classify_path(path, spec);
    if (!mod.unknown.empty() && unknown_reported.insert(mod.unknown).second) {
      out.push_back(
          {path, 1, "layering",
           "module 'src/" + mod.unknown + "' is not listed in " + spec.path +
               "; add it to the layer it belongs to (every src/ module "
               "must have an explicit place in the layer order)"});
    }
    if (mod.open || mod.module.empty()) continue;  // open trees include freely
    const int from = spec.level.at(mod.module);
    for (const IncludeRef& inc : rep->includes) {
      const std::string to_mod = include_module(inc.target, spec);
      if (to_mod.empty() || to_mod == mod.module) continue;
      const int to = spec.level.at(to_mod);
      graph[mod.module].emplace(to_mod, Edge{path, inc.line, inc.target});
      if (inc.allow) continue;
      if (to > from) {
        out.push_back(
            {path, inc.line, "layering",
             "upward include: module '" + mod.module + "' (layer " +
                 std::to_string(from) + ") includes \"" + inc.target +
                 "\" from '" + to_mod + "' (layer " + std::to_string(to) +
                 "); the layer order in " + spec.path +
                 " only permits downward dependencies -- invert the "
                 "dependency or amend layers.def deliberately"});
      } else if (to == from) {
        out.push_back(
            {path, inc.line, "layering",
             "cross-include within a layer: '" + mod.module + "' and '" +
                 to_mod + "' share layer " + std::to_string(from) + " in " +
                 spec.path +
                 " and must stay independent; move one module to its own "
                 "layer if the dependency is intended"});
      }
    }
  }

  // Cycle detection over the module graph. With a complete spec any
  // cycle contains an upward or lateral edge reported above; this keeps
  // the guarantee even if the spec degenerates (e.g. everything in one
  // layer).
  std::set<std::string> done;
  for (const auto& [start, _] : graph) {
    (void)_;
    if (done.count(start)) continue;
    std::vector<std::string> stack;
    std::set<std::string> on_stack;
    // Iterative DFS keeping the path for the cycle message.
    struct Frame {
      std::string node;
      std::map<std::string, Edge>::const_iterator it, end;
    };
    std::vector<Frame> frames;
    auto push = [&](const std::string& n) {
      static const std::map<std::string, Edge> kEmpty;
      const auto g = graph.find(n);
      const auto& succ = g == graph.end() ? kEmpty : g->second;
      frames.push_back({n, succ.begin(), succ.end()});
      stack.push_back(n);
      on_stack.insert(n);
    };
    push(start);
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.it == f.end) {
        done.insert(f.node);
        on_stack.erase(f.node);
        stack.pop_back();
        frames.pop_back();
        continue;
      }
      const std::string next = f.it->first;
      const Edge edge = f.it->second;
      ++f.it;
      if (on_stack.count(next)) {
        // Cycle: render stack from `next` onwards, closing on itself.
        std::string cyc = next;
        bool in = false;
        for (const std::string& n : stack) {
          if (n == next) in = true;
          if (in && n != next) cyc += " -> " + n;
        }
        cyc += " -> " + next;
        out.push_back({edge.file, edge.line, "layering",
                       "include cycle between modules: " + cyc +
                           "; break the cycle -- layered modules must form "
                           "a DAG"});
        continue;
      }
      if (!done.count(next)) push(next);
    }
  }
}

}  // namespace lint
