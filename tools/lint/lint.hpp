/// \file lint.hpp
/// Shared types of the parfft_lint whole-program analyzer.
///
/// The tool is organised as a small multi-pass pipeline:
///
///   source.cpp      loading, comment/string stripping, allow directives,
///                   token helpers, FNV-1a hashing
///   rules_file.cpp  the per-file determinism rules (wall-clock,
///                   unordered-iter, float-eq, include-hygiene,
///                   span-pairing, alert-transitions, pointer-key)
///   layering.cpp    layers.def parsing + the whole-program include-graph
///                   pass (upward edges, same-layer cross-includes,
///                   cycles)
///   accounting.cpp  accounting.def parsing, counter-field extraction
///                   from the report/cache headers, and the cross-TU
///                   direct-write pass
///   cache.cpp       the content-hash incremental finding cache
///   output.cpp      deterministic ordering, text report, SARIF 2.1.0,
///                   baseline suppressions
///   parfft_lint.cpp the driver
///
/// Per-file passes produce a cacheable FileReport (findings + include
/// facts); the whole-program layering pass re-derives the module graph
/// from those facts on every run, so an incremental run still checks
/// global properties.

#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace lint {

struct Finding {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

/// One quoted #include, recorded as a fact for the layering pass.
struct IncludeRef {
  std::size_t line = 0;
  std::string target;  ///< the include path as written, e.g. "serve/server.hpp"
  bool allow = false;  ///< carried a 'parfft-lint: allow(layering)' directive
};

/// Everything the per-file passes extract from one file. This is the
/// unit the incremental cache stores: on a content-hash hit the file is
/// not re-analysed, but its include facts still feed the whole-program
/// layering pass.
struct FileReport {
  std::vector<Finding> findings;
  std::vector<IncludeRef> includes;
};

struct FileText {
  std::string path;           ///< generic (forward-slash) form
  bool explicit_file = false; ///< named on the command line, not found by recursion
  std::vector<std::string> raw;   ///< original lines (allow-directive scan)
  std::vector<std::string> code;  ///< comments and literal contents blanked
  std::set<std::pair<std::size_t, std::string>> allows;  ///< (1-based line, rule)
};

// ----------------------------------------------------------- source.cpp

/// Splits `content` into lines, strips comments/strings and collects
/// allow directives.
void build_file_text(FileText& f, const std::string& content);

bool allowed(const FileText& f, std::size_t line1, const std::string& rule);
bool ident_char(char c);
/// Position of `token` in `s` at identifier boundaries, from `from`.
std::size_t find_word(const std::string& s, const std::string& token,
                      std::size_t from = 0);
bool path_contains(const std::string& path, const std::string& dir);
std::uint64_t fnv1a(const std::string& data, std::uint64_t seed = 0xcbf29ce484222325ull);

// ----------------------------------------------------------- registry

struct Rule {
  const char* name;
  const char* summary;  ///< one line, shown by --help and in SARIF rule metadata
};

/// Every rule the analyzer can emit, in documentation order. --help and
/// --expect validation are both generated from this table, so the two
/// can never drift.
const std::vector<Rule>& registry();
bool known_rule(const std::string& name);

// ------------------------------------------------------- rules_file.cpp

/// Runs every per-file rule over `f`, appending findings and include
/// facts to `rep`.
void run_file_rules(const FileText& f, FileReport& rep);

// --------------------------------------------------------- layering.cpp

/// The checked-in layer spec (tools/lint/layers.def): an ordered list of
/// layers, each holding one or more src/ modules, plus the "open" trees
/// (bench, tests, tools, examples) that may include any module.
struct LayerSpec {
  std::string path;                 ///< spec file, for messages
  std::map<std::string, int> level; ///< module -> 0-based layer index
  std::vector<std::vector<std::string>> layers;  ///< modules per level
  std::set<std::string> open;       ///< trees free to include anything

  bool loaded() const { return !layers.empty(); }
};

/// Parses `path`; returns false and sets `err` on malformed input.
bool parse_layer_spec(const std::string& path, LayerSpec& spec, std::string& err);

/// Module classification of a scanned file: the component following a
/// "src" path component when it names a spec module ("core", ...);
/// otherwise "" with `open` set when the path runs through an open tree.
struct ModuleOf {
  std::string module;  ///< empty when not a module file
  bool open = false;
  std::string unknown; ///< src/<dir> not present in the spec (a finding)
};
ModuleOf classify_path(const std::string& path, const LayerSpec& spec);

/// The whole-program pass: builds the module dependency graph from every
/// file's include facts and reports upward edges, same-layer
/// cross-module edges, spec-unknown src modules and include cycles.
void check_layering(const std::vector<std::pair<std::string, const FileReport*>>& files,
                    const LayerSpec& spec, std::vector<Finding>& out);

// ------------------------------------------------------- accounting.cpp

/// One counter-bearing type from accounting.def: the header its fields
/// are extracted from and the sanctioned accessor files allowed to
/// mutate them.
struct CounterType {
  std::string name;    ///< e.g. "ServeReport"
  std::string header;  ///< repo-relative header the fields come from
  std::set<std::string> fields;      ///< arithmetic data members indexed
  std::vector<std::string> writers;  ///< sanctioned file path suffixes
};

struct CounterSpec {
  std::string path;  ///< spec file, for messages
  std::vector<CounterType> types;
  /// field -> indices into `types` (a name may belong to several types).
  std::map<std::string, std::vector<std::size_t>> by_field;

  bool loaded() const { return !types.empty(); }
};

/// Parses `path` and extracts each type's counter fields from its
/// header (resolved against the spec file's repo root). Returns false
/// and sets `err` when the spec or a header cannot be read or a type's
/// definition is not found.
bool parse_counter_spec(const std::string& path, CounterSpec& spec, std::string& err);

/// The cross-TU accounting pass for one file: direct writes (=, +=, ++,
/// ...) to an indexed counter outside the sanctioned accessor files.
void check_accounting(const FileText& f, const CounterSpec& spec,
                      std::vector<Finding>& out);

// ------------------------------------------------------------ cache.cpp

/// Incremental finding cache, keyed by per-file content hash under one
/// configuration hash (tool version + specs + indexed headers). A stale
/// configuration invalidates every record at load time.
class Cache {
 public:
  /// Loads `path` if it exists and its config hash matches.
  void load(const std::string& path, std::uint64_t config_hash);
  /// Cached report for (path, content hash, explicit flag), or nullptr.
  const FileReport* lookup(const std::string& file, std::uint64_t hash,
                           bool explicit_file) const;
  void put(const std::string& file, std::uint64_t hash, bool explicit_file,
           const FileReport& rep);
  /// Rewrites the cache with exactly the records put() this run (records
  /// of deleted files age out).
  bool save(const std::string& path, std::uint64_t config_hash) const;

 private:
  struct Entry {
    std::uint64_t hash = 0;
    bool explicit_file = false;
    FileReport rep;
  };
  std::map<std::string, Entry> loaded_;
  std::map<std::string, Entry> current_;
};

// ----------------------------------------------------------- output.cpp

/// Sorts by (file, line, rule, message): byte-stable output regardless
/// of filesystem traversal order.
void sort_findings(std::vector<Finding>& findings);

/// Repo-relative form of a finding path (from the first src/ bench/
/// tests/ tools/ examples/ component) for SARIF URIs and baseline
/// matching; falls back to the path unchanged.
std::string rel_path(const std::string& path);

/// Baseline suppression file: '<rule>\t<rel-path>\t<line>' lines,
/// '#' comments. Returns false + err when the file cannot be read.
struct Baseline {
  std::set<std::string> keys;  ///< "rule\tpath\tline"
  bool loaded = false;
};
bool load_baseline(const std::string& path, Baseline& b, std::string& err);

/// Removes findings present in the baseline; returns the suppressed
/// count and reports stale (unmatched) baseline entries via `stale`.
std::size_t apply_baseline(std::vector<Finding>& findings, const Baseline& b,
                           std::vector<std::string>& stale);

/// Writes a SARIF 2.1.0 log of `findings` (rule metadata from the
/// registry). Returns false when the file cannot be written.
bool write_sarif(const std::string& path, const std::vector<Finding>& findings);

}  // namespace lint
