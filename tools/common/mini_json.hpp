#pragma once
/// \file mini_json.hpp
/// Minimal JSON parser shared by the repo's perf/observability tooling
/// (tools/perfdiff, tools/parfft_top). Covers exactly the subset the
/// repo's own emitters produce -- objects / arrays / strings without
/// escapes needing decoding / numbers / booleans / null -- so the tools
/// stay dependency-free.

#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

namespace parfft::tools {

struct JValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind kind = Kind::Null;
  bool b = false;
  double num = 0;
  std::string str;
  std::vector<JValue> arr;
  std::map<std::string, JValue> obj;

  bool is_obj() const { return kind == Kind::Object; }
  bool is_arr() const { return kind == Kind::Array; }
  /// Member lookup; null when absent or not an object.
  const JValue* get(const std::string& key) const {
    if (kind != Kind::Object) return nullptr;
    const auto it = obj.find(key);
    return it == obj.end() ? nullptr : &it->second;
  }
  double num_or(const std::string& key, double fallback) const {
    const JValue* v = get(key);
    return v && v->kind == Kind::Number ? v->num : fallback;
  }
  std::string str_or(const std::string& key,
                     const std::string& fallback) const {
    const JValue* v = get(key);
    return v && v->kind == Kind::String ? v->str : fallback;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  bool parse(JValue& out) {
    skip_ws();
    if (!value(out)) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r'))
      ++pos_;
  }

  bool literal(const char* word) {
    const std::size_t n = std::strlen(word);
    if (s_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  bool value(JValue& out) {
    skip_ws();
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object(out);
      case '[': return array(out);
      case '"': out.kind = JValue::Kind::String; return string(out.str);
      case 't': out.kind = JValue::Kind::Bool; out.b = true;
                return literal("true");
      case 'f': out.kind = JValue::Kind::Bool; out.b = false;
                return literal("false");
      case 'n': out.kind = JValue::Kind::Null; return literal("null");
      default: out.kind = JValue::Kind::Number; return number(out.num);
    }
  }

  bool string(std::string& out) {
    if (s_[pos_] != '"') return false;
    ++pos_;
    out.clear();
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        if (pos_ + 1 >= s_.size()) return false;
        out += s_[pos_ + 1];  // raw pass-through; keys we read are plain
        pos_ += 2;
      } else {
        out += s_[pos_++];
      }
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;
    return true;
  }

  bool number(double& out) {
    const char* start = s_.c_str() + pos_;
    char* end = nullptr;
    out = std::strtod(start, &end);
    if (end == start) return false;
    pos_ += static_cast<std::size_t>(end - start);
    return true;
  }

  bool array(JValue& out) {
    out.kind = JValue::Kind::Array;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == ']') { ++pos_; return true; }
    while (true) {
      JValue v;
      if (!value(v)) return false;
      out.arr.push_back(std::move(v));
      skip_ws();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') { ++pos_; continue; }
      if (s_[pos_] == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool object(JValue& out) {
    out.kind = JValue::Kind::Object;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      std::string key;
      if (pos_ >= s_.size() || !string(key)) return false;
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != ':') return false;
      ++pos_;
      JValue v;
      if (!value(v)) return false;
      out.obj.emplace(std::move(key), std::move(v));
      skip_ws();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') { ++pos_; continue; }
      if (s_[pos_] == '}') { ++pos_; return true; }
      return false;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace parfft::tools
