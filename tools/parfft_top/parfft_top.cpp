/// \file parfft_top.cpp
/// Ascii dashboard over telemetry snapshots (obs::Telemetry::
/// write_snapshot, schema "parfft-telemetry-v1").
///
/// Usage:
///   parfft_top <snapshot.json> [--once] [--validate]
///
/// Renders one frame: every windowed series with its run-total stats and
/// a sparkline of per-window activity, the per-tenant SLO panel
/// (state / attainment / burn rates), the alert log tail and the flight-
/// recorder counters. --once is accepted for symmetry with live-ish
/// wrappers (rendering is always one frame here -- the snapshot is a
/// file, and this repo's clocks are virtual). --validate only checks the
/// snapshot against the schema and prints nothing but the verdict.
///
/// Exit codes: 0 ok, 1 schema-invalid snapshot, 2 usage or I/O error.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/table.hpp"
#include "mini_json.hpp"

namespace {

using parfft::tools::JsonParser;
using parfft::tools::JValue;

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4g", v);
  return buf;
}

/// Per-window activity as a density ramp, newest window rightmost.
std::string sparkline(const JValue& windows) {
  static const char kRamp[] = " .:-=+*#%@";
  double peak = 0;
  for (const JValue& w : windows.arr)
    peak = std::max(peak, w.num_or("count", 0));
  std::string out;
  const std::size_t n = windows.arr.size();
  const std::size_t first = n > 32 ? n - 32 : 0;  // last 32 windows
  for (std::size_t i = first; i < n; ++i) {
    const double c = windows.arr[i].num_or("count", 0);
    const int idx =
        peak > 0 ? static_cast<int>(c / peak * 9.0) : 0;
    out += kRamp[std::clamp(idx, 0, 9)];
  }
  return out;
}

/// Schema check: the keys every parfft-telemetry-v1 snapshot must carry.
bool validate(const JValue& root, std::string& why) {
  if (!root.is_obj()) { why = "root is not an object"; return false; }
  if (root.str_or("schema", "") != "parfft-telemetry-v1") {
    why = "schema is not parfft-telemetry-v1";
    return false;
  }
  for (const char* key : {"now", "window"}) {
    const JValue* v = root.get(key);
    if (!v || v->kind != JValue::Kind::Number) {
      why = std::string("missing numeric \"") + key + "\"";
      return false;
    }
  }
  const JValue* series = root.get("series");
  if (!series || !series->is_obj()) { why = "missing \"series\" object"; return false; }
  for (const auto& [name, s] : series->obj) {
    const JValue* w = s.get("windows");
    if (!s.is_obj() || !w || !w->is_arr()) {
      why = "series \"" + name + "\" has no windows array";
      return false;
    }
  }
  for (const char* key : {"slo", "alerts"}) {
    const JValue* v = root.get(key);
    if (!v || !v->is_arr()) {
      why = std::string("missing \"") + key + "\" array";
      return false;
    }
  }
  const JValue* rec = root.get("recorder");
  if (!rec || !rec->is_obj() || !rec->get("capacity")) {
    why = "missing \"recorder\" object";
    return false;
  }
  // Optional cluster extension: a per-machine section, one summary
  // object per shard, each carrying a numeric id.
  if (const JValue* machines = root.get("machines")) {
    if (!machines->is_arr()) { why = "\"machines\" is not an array"; return false; }
    for (const JValue& m : machines->arr) {
      const JValue* id = m.get("id");
      if (!m.is_obj() || !id || id->kind != JValue::Kind::Number) {
        why = "machines entry has no numeric \"id\"";
        return false;
      }
    }
  }
  return true;
}

/// Splits a cluster-snapshot series name "machine/<id>/<rest>" into its
/// machine column and plain name; "-" for untagged series.
std::pair<std::string, std::string> split_machine(const std::string& name) {
  const std::string prefix = "machine/";
  if (name.rfind(prefix, 0) == 0) {
    const std::size_t slash = name.find('/', prefix.size());
    if (slash != std::string::npos && slash > prefix.size())
      return {name.substr(prefix.size(), slash - prefix.size()),
              name.substr(slash + 1)};
  }
  return {"-", name};
}

void render(std::ostream& os, const JValue& root, const std::string& path) {
  os << "parfft_top -- " << path << "\n";
  os << "now " << fmt(root.num_or("now", 0)) << "s  window "
     << fmt(root.num_or("window", 0)) << "s  telemetry "
     << (root.get("enabled") && root.get("enabled")->b ? "on" : "off")
     << "\n\n";

  if (const JValue* machines = root.get("machines");
      machines && !machines->arr.empty()) {
    parfft::Table t({"machine", "now", "series", "requests", "slo",
                     "alerts", "recorded", "dumps"});
    for (const JValue& m : machines->arr) {
      t.add_row({fmt(m.num_or("id", -1)), fmt(m.num_or("now", 0)),
                 fmt(m.num_or("series", 0)), fmt(m.num_or("requests", 0)),
                 fmt(m.num_or("slo", 0)), fmt(m.num_or("alerts", 0)),
                 fmt(m.num_or("recorded", 0)), fmt(m.num_or("dumps", 0))});
    }
    t.print(os);
    os << "\n";
  }

  const JValue* series = root.get("series");
  if (series && !series->obj.empty()) {
    parfft::Table t({"machine", "series", "count", "mean", "p50", "p99",
                     "max", "activity (newest right)"});
    for (const auto& [name, s] : series->obj) {
      const auto [machine, plain] = split_machine(name);
      t.add_row({machine, plain, fmt(s.num_or("count", 0)),
                 fmt(s.num_or("mean", 0)), fmt(s.num_or("p50", 0)),
                 fmt(s.num_or("p99", 0)), fmt(s.num_or("max", 0)),
                 sparkline(*s.get("windows"))});
    }
    t.print(os);
    os << "\n";
  }

  const JValue* slo = root.get("slo");
  if (slo && !slo->arr.empty()) {
    parfft::Table t({"machine", "tenant", "state", "attainment", "objective",
                     "burn short", "burn long", "budget"});
    for (const JValue& m : slo->arr) {
      const double att = m.num_or("attainment", 1.0);
      const double obj = m.num_or("objective", 0);
      // Error-budget bar: fraction of the allowed error rate consumed.
      const double budget = obj < 1.0 ? (1.0 - att) / (1.0 - obj) : 0.0;
      const int fill =
          std::clamp(static_cast<int>(budget * 10.0), 0, 10);
      std::string bar = "[";
      for (int i = 0; i < 10; ++i) bar += i < fill ? '#' : '-';
      bar += ']';
      const double machine = m.num_or("machine", -1);
      t.add_row({machine >= 0 ? fmt(machine) : "-",
                 fmt(m.num_or("tenant", 0)), m.str_or("state", "?"),
                 fmt(att), fmt(obj), fmt(m.num_or("burn_short", 0)),
                 fmt(m.num_or("burn_long", 0)), bar});
    }
    t.print(os);
    os << "\n";
  }

  const JValue* alerts = root.get("alerts");
  if (alerts && !alerts->arr.empty()) {
    os << "alerts (" << alerts->arr.size() << " total, last 8):\n";
    const std::size_t n = alerts->arr.size();
    for (std::size_t i = n > 8 ? n - 8 : 0; i < n; ++i) {
      const JValue& a = alerts->arr[i];
      os << "  t=" << fmt(a.num_or("t", 0)) << "  tenant "
         << fmt(a.num_or("tenant", 0)) << "  " << a.str_or("from", "?")
         << " -> " << a.str_or("to", "?") << "  (burn "
         << fmt(a.num_or("burn_short", 0)) << "/"
         << fmt(a.num_or("burn_long", 0)) << ")\n";
    }
    os << "\n";
  }

  if (const JValue* rec = root.get("recorder")) {
    os << "recorder: seen " << fmt(rec->num_or("seen", 0)) << "  recorded "
       << fmt(rec->num_or("recorded", 0)) << "  capacity "
       << fmt(rec->num_or("capacity", 0)) << "  dumps "
       << (rec->get("dumps") ? rec->get("dumps")->arr.size() : 0) << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  const char* path = nullptr;
  bool validate_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--once") == 0) {
      // One frame is the only mode; accepted for wrapper symmetry.
    } else if (std::strcmp(argv[i], "--validate") == 0) {
      validate_only = true;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf("usage: parfft_top <snapshot.json> [--once] "
                  "[--validate]\n");
      return 0;
    } else if (!path) {
      path = argv[i];
    } else {
      std::fprintf(stderr, "parfft_top: unexpected argument %s\n", argv[i]);
      return 2;
    }
  }
  if (!path) {
    std::fprintf(stderr,
                 "usage: parfft_top <snapshot.json> [--once] [--validate]\n");
    return 2;
  }

  std::ifstream f(path);
  if (!f) {
    std::fprintf(stderr, "parfft_top: cannot open %s\n", path);
    return 2;
  }
  std::ostringstream ss;
  ss << f.rdbuf();
  const std::string text = ss.str();
  JValue root;
  if (!JsonParser(text).parse(root)) {
    std::fprintf(stderr, "parfft_top: %s is not valid JSON\n", path);
    return 1;
  }
  std::string why;
  if (!validate(root, why)) {
    std::fprintf(stderr, "parfft_top: %s: invalid snapshot: %s\n", path,
                 why.c_str());
    return 1;
  }
  if (validate_only) {
    std::printf("parfft_top: %s: valid parfft-telemetry-v1 snapshot\n",
                path);
    return 0;
  }
  render(std::cout, root, path);
  return 0;
}
