/// \file perfdiff.cpp
/// Compares two BENCH_parfft.json files (bench/perf_baseline output) and
/// exits nonzero when the current file regresses against the baseline.
///
/// Usage:
///   perfdiff <baseline.json> <current.json> [--tol=0.05]
///
/// Every metric carries a "dir" tag saying which direction is better;
/// a move the *wrong* way by more than the relative tolerance is a
/// regression. Metrics missing from the current file are regressions
/// too (a deleted guard is a silent regression); new metrics are
/// reported but never fail. Exit codes: 0 ok, 1 regression, 2 usage or
/// parse error.
///
/// The parser covers exactly the JSON subset perf_baseline emits
/// (objects / arrays / strings without escapes needing decoding /
/// numbers / booleans / null) -- no external dependency.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct JValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind kind = Kind::Null;
  bool b = false;
  double num = 0;
  std::string str;
  std::vector<JValue> arr;
  std::map<std::string, JValue> obj;
};

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  bool parse(JValue& out) {
    skip_ws();
    if (!value(out)) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }

  bool literal(const char* word) {
    const std::size_t n = std::strlen(word);
    if (s_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  bool value(JValue& out) {
    skip_ws();
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object(out);
      case '[': return array(out);
      case '"': out.kind = JValue::Kind::String; return string(out.str);
      case 't': out.kind = JValue::Kind::Bool; out.b = true;
                return literal("true");
      case 'f': out.kind = JValue::Kind::Bool; out.b = false;
                return literal("false");
      case 'n': out.kind = JValue::Kind::Null; return literal("null");
      default: out.kind = JValue::Kind::Number; return number(out.num);
    }
  }

  bool string(std::string& out) {
    if (s_[pos_] != '"') return false;
    ++pos_;
    out.clear();
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        if (pos_ + 1 >= s_.size()) return false;
        out += s_[pos_ + 1];  // raw pass-through; keys we read are plain
        pos_ += 2;
      } else {
        out += s_[pos_++];
      }
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;
    return true;
  }

  bool number(double& out) {
    const char* start = s_.c_str() + pos_;
    char* end = nullptr;
    out = std::strtod(start, &end);
    if (end == start) return false;
    pos_ += static_cast<std::size_t>(end - start);
    return true;
  }

  bool array(JValue& out) {
    out.kind = JValue::Kind::Array;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == ']') { ++pos_; return true; }
    while (true) {
      JValue v;
      if (!value(v)) return false;
      out.arr.push_back(std::move(v));
      skip_ws();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') { ++pos_; continue; }
      if (s_[pos_] == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool object(JValue& out) {
    out.kind = JValue::Kind::Object;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      std::string key;
      if (pos_ >= s_.size() || !string(key)) return false;
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != ':') return false;
      ++pos_;
      JValue v;
      if (!value(v)) return false;
      out.obj.emplace(std::move(key), std::move(v));
      skip_ws();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') { ++pos_; continue; }
      if (s_[pos_] == '}') { ++pos_; return true; }
      return false;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

struct Metric {
  double v = 0;
  std::string dir = "lower";
};

bool load_metrics(const char* path, std::map<std::string, Metric>& out) {
  std::ifstream f(path);
  if (!f) {
    std::fprintf(stderr, "perfdiff: cannot open %s\n", path);
    return false;
  }
  std::ostringstream ss;
  ss << f.rdbuf();
  const std::string text = ss.str();
  JValue root;
  if (!Parser(text).parse(root) || root.kind != JValue::Kind::Object) {
    std::fprintf(stderr, "perfdiff: %s is not valid JSON\n", path);
    return false;
  }
  const auto it = root.obj.find("metrics");
  if (it == root.obj.end() || it->second.kind != JValue::Kind::Object) {
    std::fprintf(stderr, "perfdiff: %s has no \"metrics\" object\n", path);
    return false;
  }
  for (const auto& [name, val] : it->second.obj) {
    if (val.kind != JValue::Kind::Object) continue;
    Metric m;
    if (const auto v = val.obj.find("v");
        v != val.obj.end() && v->second.kind == JValue::Kind::Number)
      m.v = v->second.num;
    else
      continue;
    if (const auto d = val.obj.find("dir");
        d != val.obj.end() && d->second.kind == JValue::Kind::String)
      m.dir = d->second.str;
    out.emplace(name, std::move(m));
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  double tol = 0.05;
  std::vector<const char*> files;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--tol=", 6) == 0) {
      tol = std::strtod(argv[i] + 6, nullptr);
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf("usage: perfdiff <baseline.json> <current.json> "
                  "[--tol=0.05]\n");
      return 0;
    } else {
      files.push_back(argv[i]);
    }
  }
  if (files.size() != 2 || tol < 0) {
    std::fprintf(stderr,
                 "usage: perfdiff <baseline.json> <current.json> "
                 "[--tol=0.05]\n");
    return 2;
  }

  std::map<std::string, Metric> base, cur;
  if (!load_metrics(files[0], base) || !load_metrics(files[1], cur)) return 2;

  int regressions = 0, improvements = 0;
  std::size_t name_w = 6;
  for (const auto& [name, m] : base) name_w = std::max(name_w, name.size());
  std::printf("%-*s %14s %14s %9s  status\n", static_cast<int>(name_w),
              "metric", "baseline", "current", "delta");
  for (const auto& [name, b] : base) {
    const auto it = cur.find(name);
    if (it == cur.end()) {
      std::printf("%-*s %14.6g %14s %9s  REGRESSION (missing)\n",
                  static_cast<int>(name_w), name.c_str(), b.v, "-", "-");
      ++regressions;
      continue;
    }
    const Metric& c = it->second;
    const double denom = b.v != 0 ? b.v : 1.0;
    const double rel = (c.v - b.v) / denom;
    // Positive `bad` means the metric moved the wrong way.
    const double bad = b.dir == "higher" ? -rel : rel;
    const char* status = "ok";
    if (bad > tol) {
      status = "REGRESSION";
      ++regressions;
    } else if (bad < -tol) {
      status = "improved";
      ++improvements;
    }
    std::printf("%-*s %14.6g %14.6g %+8.2f%%  %s\n",
                static_cast<int>(name_w), name.c_str(), b.v, c.v, 100 * rel,
                status);
  }
  for (const auto& [name, c] : cur)
    if (base.find(name) == base.end())
      std::printf("%-*s %14s %14.6g %9s  new\n", static_cast<int>(name_w),
                  name.c_str(), "-", c.v, "-");

  std::printf("\n%d regression(s), %d improvement(s), tolerance %.1f%%\n",
              regressions, improvements, 100 * tol);
  return regressions > 0 ? 1 : 0;
}
