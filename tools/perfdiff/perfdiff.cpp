/// \file perfdiff.cpp
/// Compares two BENCH_parfft.json files (bench/perf_baseline output) and
/// exits nonzero when the current file regresses against the baseline.
///
/// Usage:
///   perfdiff <baseline.json> <current.json> [--tol=0.05] [--only=a,b]
///
/// Every metric carries a "dir" tag saying which direction is better;
/// a move the *wrong* way by more than the relative tolerance is a
/// regression. The global --tol applies unless the baseline metric
/// carries its own "tol" (e.g. the wall-clock-derived
/// obs.trace_overhead_ratio, whose noise floor is wider than the
/// virtual-time metrics'). --only=name,name restricts the comparison to
/// the named metrics -- the smoke path checks a partial run against the
/// full committed baseline without every absent metric counting as
/// deleted. Metrics missing from the current file are regressions
/// (a deleted guard is a silent regression); new metrics are reported
/// but never fail. Exit codes: 0 ok, 1 regression, 2 usage/parse error.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "mini_json.hpp"

namespace {

using parfft::tools::JsonParser;
using parfft::tools::JValue;

struct Metric {
  double v = 0;
  std::string dir = "lower";
  double tol = -1;  ///< per-metric override; < 0 = use the global
};

bool load_metrics(const char* path, std::map<std::string, Metric>& out) {
  std::ifstream f(path);
  if (!f) {
    std::fprintf(stderr, "perfdiff: cannot open %s\n", path);
    return false;
  }
  std::ostringstream ss;
  ss << f.rdbuf();
  const std::string text = ss.str();
  JValue root;
  if (!JsonParser(text).parse(root) || !root.is_obj()) {
    std::fprintf(stderr, "perfdiff: %s is not valid JSON\n", path);
    return false;
  }
  const JValue* metrics = root.get("metrics");
  if (!metrics || !metrics->is_obj()) {
    std::fprintf(stderr, "perfdiff: %s has no \"metrics\" object\n", path);
    return false;
  }
  for (const auto& [name, val] : metrics->obj) {
    if (!val.is_obj()) continue;
    const JValue* v = val.get("v");
    if (!v || v->kind != JValue::Kind::Number) continue;
    Metric m;
    m.v = v->num;
    m.dir = val.str_or("dir", "lower");
    m.tol = val.num_or("tol", -1.0);
    out.emplace(name, std::move(m));
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  double tol = 0.05;
  std::set<std::string> only;
  std::vector<const char*> files;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--tol=", 6) == 0) {
      tol = std::strtod(argv[i] + 6, nullptr);
    } else if (std::strncmp(argv[i], "--only=", 7) == 0) {
      std::string list(argv[i] + 7);
      std::size_t pos = 0;
      while (pos <= list.size()) {
        const std::size_t comma = list.find(',', pos);
        const std::string name =
            list.substr(pos, comma == std::string::npos ? comma : comma - pos);
        if (!name.empty()) only.insert(name);
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf("usage: perfdiff <baseline.json> <current.json> "
                  "[--tol=0.05] [--only=metric,metric]\n");
      return 0;
    } else {
      files.push_back(argv[i]);
    }
  }
  if (files.size() != 2 || tol < 0) {
    std::fprintf(stderr,
                 "usage: perfdiff <baseline.json> <current.json> "
                 "[--tol=0.05] [--only=metric,metric]\n");
    return 2;
  }

  std::map<std::string, Metric> base, cur;
  if (!load_metrics(files[0], base) || !load_metrics(files[1], cur)) return 2;
  if (!only.empty()) {
    for (const std::string& name : only)
      if (base.find(name) == base.end()) {
        std::fprintf(stderr, "perfdiff: --only metric %s not in baseline\n",
                     name.c_str());
        return 2;
      }
  }

  int regressions = 0, improvements = 0;
  std::size_t name_w = 6;
  for (const auto& [name, m] : base) name_w = std::max(name_w, name.size());
  std::printf("%-*s %14s %14s %9s  status\n", static_cast<int>(name_w),
              "metric", "baseline", "current", "delta");
  for (const auto& [name, b] : base) {
    if (!only.empty() && only.find(name) == only.end()) continue;
    const auto it = cur.find(name);
    if (it == cur.end()) {
      std::printf("%-*s %14.6g %14s %9s  REGRESSION (missing)\n",
                  static_cast<int>(name_w), name.c_str(), b.v, "-", "-");
      ++regressions;
      continue;
    }
    const Metric& c = it->second;
    const double denom = b.v != 0 ? b.v : 1.0;
    const double rel = (c.v - b.v) / denom;
    // Positive `bad` means the metric moved the wrong way.
    const double bad = b.dir == "higher" ? -rel : rel;
    const double limit = b.tol >= 0 ? b.tol : tol;
    const char* status = "ok";
    if (bad > limit) {
      status = "REGRESSION";
      ++regressions;
    } else if (bad < -limit) {
      status = "improved";
      ++improvements;
    }
    std::printf("%-*s %14.6g %14.6g %+8.2f%%  %s\n",
                static_cast<int>(name_w), name.c_str(), b.v, c.v, 100 * rel,
                status);
  }
  if (only.empty())
    for (const auto& [name, c] : cur)
      if (base.find(name) == base.end())
        std::printf("%-*s %14s %14.6g %9s  new\n", static_cast<int>(name_w),
                    name.c_str(), "-", c.v, "-");

  std::printf("\n%d regression(s), %d improvement(s), tolerance %.1f%%\n",
              regressions, improvements, 100 * tol);
  return regressions > 0 ? 1 : 0;
}
